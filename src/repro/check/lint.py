"""``repro lint``: a static pass banning nondeterminism hazards.

Three rules, enforced over ``src/repro/``:

* **wall-clock** — calls to host clocks (``time.time``, ``time.time_ns``,
  ``time.monotonic[_ns]``, ``time.perf_counter[_ns]``,
  ``time.process_time``, ``datetime.now``/``utcnow``/``today``).
  Virtual time comes from ``sim.now``; a host clock read anywhere in
  simulation code is a determinism leak.  Allowlisted under ``exec/``,
  whose job is wall-clock benchmarking.
* **module-random** — calls through the ``random`` *module's* hidden
  global generator (``random.random()``, ``random.shuffle()``,
  ``random.seed()``, ...).  All randomness must flow through seeded
  :class:`~repro.sim.Rng` / ``random.Random(seed)`` instances;
  constructing ``random.Random`` is explicitly allowed.
* **unordered-iter** — ``for`` loops over ``set`` expressions (literals,
  comprehensions, ``set()``/``frozenset()`` calls, or local names bound
  to them) inside functions that schedule events (``post``, ``post_at``,
  ``call_at``, ``call_in``, ``spawn``, ``push``).  Set iteration order
  depends on ``PYTHONHASHSEED`` for str-keyed sets, so feeding it into
  the event heap breaks cross-process bit-identity; wrap the iterable in
  ``sorted(...)``.  Dict iteration is insertion-ordered in every
  supported CPython and is deliberately not flagged — the sanitizer's
  replay digest covers insertion-order regressions dynamically.

Suppression: a finding on a line containing ``# lint: allow[rule]`` (or
a bare ``# lint: allow``) is dropped — reserve it for sites with a
written justification.  The path allowlist lives in
:data:`PATH_ALLOW`; policy discussion in ``docs/CHECKING.md``.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

#: rule id -> one-line description (shown by ``repro lint --rules``)
RULES: Dict[str, str] = {
    "wall-clock": "host clock call (time.time & co); use sim.now",
    "module-random": "module-level random call; use a seeded Rng",
    "unordered-iter": "set iteration feeding event scheduling; sort it",
}

#: path-prefix allowlist (POSIX-style, relative to the linted root):
#: prefix -> rules exempted beneath it.
PATH_ALLOW: Tuple[Tuple[str, Tuple[str, ...]], ...] = (
    # exec/ is the benchmarking/executor layer: wall-clock measurement
    # is its purpose, never an input to virtual time.
    ("exec/", ("wall-clock",)),
)

_WALL_CLOCK_ATTRS = {
    "time", "time_ns", "monotonic", "monotonic_ns", "perf_counter",
    "perf_counter_ns", "process_time", "process_time_ns", "clock_gettime",
}
_DATETIME_ATTRS = {"now", "utcnow", "today"}
#: the only attribute of the random module simulation code may touch
_RANDOM_ALLOWED_ATTRS = {"Random"}
_SCHEDULING_CALLS = {"post", "post_at", "call_at", "call_in", "spawn", "push"}
_SET_CONSTRUCTORS = {"set", "frozenset"}


@dataclass(frozen=True)
class LintFinding:
    path: str
    line: int
    rule: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


class _ModuleImports:
    """Which local names refer to the time/random/datetime modules (or
    their members) in one file."""

    def __init__(self) -> None:
        self.module_alias: Dict[str, str] = {}   # alias -> module name
        self.banned_name: Dict[str, Tuple[str, str]] = {}  # alias -> (rule, detail)

    def scan(self, tree: ast.AST) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for item in node.names:
                    if item.name in ("time", "random", "datetime"):
                        self.module_alias[item.asname or item.name] = item.name
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                if node.module == "time":
                    for item in node.names:
                        if item.name in _WALL_CLOCK_ATTRS:
                            self.banned_name[item.asname or item.name] = (
                                "wall-clock", f"time.{item.name}")
                elif node.module == "random":
                    for item in node.names:
                        if item.name not in _RANDOM_ALLOWED_ATTRS:
                            self.banned_name[item.asname or item.name] = (
                                "module-random", f"random.{item.name}")
                elif node.module == "datetime":
                    for item in node.names:
                        # `from datetime import datetime` makes the class
                        # available under an alias; .now()/.utcnow() on it
                        # are wall-clock reads.
                        if item.name in ("datetime", "date"):
                            self.module_alias[item.asname or item.name] = (
                                "datetime")


def _call_finding(node: ast.Call, imports: _ModuleImports) -> Optional[Tuple[str, str]]:
    """(rule, detail) for a banned call expression, else None."""
    func = node.func
    if isinstance(func, ast.Name):
        banned = imports.banned_name.get(func.id)
        if banned is not None:
            return banned
        return None
    if not isinstance(func, ast.Attribute):
        return None
    base = func.value
    attr = func.attr
    if isinstance(base, ast.Name):
        module = imports.module_alias.get(base.id)
        if module == "time" and attr in _WALL_CLOCK_ATTRS:
            return ("wall-clock", f"time.{attr}")
        if module == "random" and attr not in _RANDOM_ALLOWED_ATTRS:
            return ("module-random", f"random.{attr}")
        if module == "datetime" and attr in _DATETIME_ATTRS:
            return ("wall-clock", f"datetime.{attr}")
    elif isinstance(base, ast.Attribute) and isinstance(base.value, ast.Name):
        # datetime.datetime.now() / datetime.date.today()
        if (imports.module_alias.get(base.value.id) == "datetime"
                and attr in _DATETIME_ATTRS):
            return ("wall-clock", f"datetime.{base.attr}.{attr}")
    return None


def _is_setish(node: ast.AST, set_names: Set[str]) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
            and node.func.id in _SET_CONSTRUCTORS):
        return True
    if isinstance(node, ast.Name) and node.id in set_names:
        return True
    return False


def _schedules_events(func: ast.AST) -> bool:
    for node in ast.walk(func):
        if not isinstance(node, ast.Call):
            continue
        callee = node.func
        if isinstance(callee, ast.Attribute) and callee.attr in _SCHEDULING_CALLS:
            return True
        if isinstance(callee, ast.Name) and callee.id == "spawn":
            return True
    return False


def _set_bound_names(func: ast.AST) -> Set[str]:
    names: Set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name) and _is_setish(node.value, names):
                names.add(target.id)
    return names


def lint_source(source: str, path: str = "<string>") -> List[LintFinding]:
    """Lint one file's source text; returns raw findings (no allowlists)."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as err:
        return [LintFinding(path=path, line=err.lineno or 0, rule="parse",
                            message=f"syntax error: {err.msg}")]
    imports = _ModuleImports()
    imports.scan(tree)
    findings: List[LintFinding] = []

    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            hit = _call_finding(node, imports)
            if hit is not None:
                rule, detail = hit
                findings.append(LintFinding(
                    path=path, line=node.lineno, rule=rule,
                    message=f"call to {detail}()"))
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if not _schedules_events(node):
                continue
            set_names = _set_bound_names(node)
            for inner in ast.walk(node):
                if (isinstance(inner, ast.For)
                        and _is_setish(inner.iter, set_names)):
                    findings.append(LintFinding(
                        path=path, line=inner.lineno, rule="unordered-iter",
                        message=(f"iterating a set in {node.name}(), which "
                                 f"schedules events; wrap in sorted(...)")))
    # nested functions are walked once per enclosing def: dedupe
    return sorted(set(findings), key=lambda f: (f.path, f.line, f.rule))


def _inline_allowed(line: str, rule: str) -> bool:
    marker = "# lint: allow"
    idx = line.find(marker)
    if idx < 0:
        return False
    rest = line[idx + len(marker):].strip()
    if not rest.startswith("["):
        return True                # bare allow: suppresses every rule
    if "]" not in rest:
        return False
    allowed = [item.strip() for item in rest[1:rest.find("]")].split(",")]
    return rule in allowed


def _path_allowed(rel_path: str, rule: str) -> bool:
    for prefix, rules in PATH_ALLOW:
        if rel_path.startswith(prefix) and rule in rules:
            return True
    return False


def lint_file(path: str, rel_path: Optional[str] = None) -> List[LintFinding]:
    """Lint one file, applying inline and path allowlists."""
    with open(path, "r", encoding="utf-8") as fh:
        source = fh.read()
    rel = (rel_path or path).replace(os.sep, "/")
    lines = source.splitlines()
    kept = []
    for finding in lint_source(source, path=rel):
        if _path_allowed(rel, finding.rule):
            continue
        if 0 < finding.line <= len(lines) and _inline_allowed(
                lines[finding.line - 1], finding.rule):
            continue
        kept.append(finding)
    return kept


def lint_tree(root: str) -> List[LintFinding]:
    """Lint every ``.py`` file under ``root`` (paths reported relative)."""
    findings: List[LintFinding] = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(d for d in dirnames if d != "__pycache__")
        for name in sorted(filenames):
            if not name.endswith(".py"):
                continue
            full = os.path.join(dirpath, name)
            rel = os.path.relpath(full, root).replace(os.sep, "/")
            findings.extend(lint_file(full, rel_path=rel))
    return findings
