"""Decomposition equivalence: compare event streams across executors.

The sanitizer's rolling digest (:mod:`repro.check.sanitizer`) proves two
*replays of the same executor* are bit-identical — it hashes sequence
numbers and RNG positions, which legitimately differ between a serial
run and a rack-sharded run of the same spec.  This module defines the
*canonical* stream on which serial and sharded execution must agree:
the multiset of ``(virtual time, callback id)`` pairs over every fired
event, merged across all simulators in a session.

Two normalizations make the comparison meaningful:

* callbacks owned by the shard coordinator itself are aliased to their
  serial counterparts (the boundary uplink's ``transmit`` stands in for
  ``Link.transmit``) or dropped (coordinator bookkeeping has no serial
  counterpart);
* the stream is sorted by ``(when, callback id)`` — shard-local
  sequence numbers are meaningless across simulators, and the serial
  tie-break order among same-time events is an implementation detail
  the decomposition does not (and need not) preserve.

Equal digests therefore mean: every event fired at the same virtual
time, running the same code, in both decompositions.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple
from zlib import crc32

from .sanitizer import SanitizerSession, StepRecord

#: shard-coordinator callbacks that replicate a serial-run callback
CALLBACK_ALIASES = {
    "repro.exec.shard:_BoundaryLink.transmit": "repro.net.link:Link.transmit",
}

#: modules whose (unaliased) callbacks are coordinator bookkeeping with
#: no serial counterpart
COORDINATOR_MODULES = ("repro.exec.shard",)


def canonical_events(records: Iterable[StepRecord]
                     ) -> List[Tuple[float, str]]:
    """The sorted ``(when, callback id)`` stream of a recorded run."""
    events: List[Tuple[float, str]] = []
    for record in records:
        callback = CALLBACK_ALIASES.get(record.callback, record.callback)
        if callback.split(":", 1)[0] in COORDINATOR_MODULES:
            continue
        events.append((record.when, callback))
    events.sort()
    return events


def canonical_digest(records: Iterable[StepRecord]) -> int:
    """CRC-32 over the canonical event stream."""
    digest = 0
    for when, callback in canonical_events(records):
        digest = crc32(f"{when!r}|{callback}".encode(),
                       digest) & 0xFFFFFFFF
    return digest


def session_digest(session: SanitizerSession) -> int:
    """Canonical digest of everything a sanitizer session recorded
    (requires ``keep_records=True``, the default)."""
    return canonical_digest(session.recorder.records)
