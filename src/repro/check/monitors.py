"""Runtime invariant monitors (the CheckPlane's monitor catalog).

Each monitor watches one component and yields human-readable violation
messages from :meth:`check`.  Monitors are *pure observers*: they never
schedule events or charge virtual time, so an instrumented run produces
bit-identical results to an uninstrumented one.  They are driven from
:class:`~repro.check.plane.CheckPlane.after_step` every N engine events
(and, for Paxos, synchronously at each commit).

The invariants:

* **SchedulerMonitor** — DRR quantum conservation: every µs of deficit
  granted is spent on execution, forfeited when an actor leaves the DRR
  group, or still outstanding on a runnable actor
  (``granted == spent + forfeited + Σ outstanding``); non-DRR actors
  carry no deficit; no runnable DRR actor with backlog goes unserved
  longer than the starvation bound.
* **DmoMonitor** — every object lives in exactly one table, its
  ``location`` field agrees with the table holding it, and each actor's
  region satisfies ``0 <= used <= capacity`` with ``used`` equal to the
  actor's live object bytes.
* **RingMonitor** — slot conservation
  (``free + buffered + unsynced_consumed == slots``),
  ``produced == consumed + buffered``, and non-decreasing visibility
  times along the buffer (the DMA ordering guarantee of §3.5).
* **ChannelMonitor** — per-key release sequence is monotone, released
  counts track ``expected`` exactly (at-most-once, in-order delivery),
  and nothing below the release point is ever stashed.
* **PaxosMonitor** — at most one value is ever chosen per log instance
  across a replica group (the Paxos safety property).
* **SteeringMonitor** — every steered request reaches the backend that
  owns its key in the request's epoch, per-flow affinity is stable
  within an epoch, and no request is handed to two different backends
  in the same epoch (steering safety during live migration).
* **PulseMonitor** — the PulsePlane's sampling pass schedules nothing
  (zero virtual-time cost), samples land on the period lattice, and SLO
  breach accounting is conservative: every counted breach is backed by
  a recorded transition with burns over the alert threshold.
* **PlanMonitor** — the runtime placement realises the compiled plan
  (:mod:`repro.plan`): every planned actor sits on its planned device
  until the reactive scheduler first overrides it (a migration starting
  or completing releases the actor from the plan's authority — reactive
  control legitimately takes over from there).
* **TenantMonitor** — multi-tenant isolation (docs/TENANCY.md): the
  per-tenant DRR ledgers conserve quantum tenant by tenant
  (``granted == spent + forfeited + Σ outstanding`` for each tenant),
  no tenant spends more than it was granted (share overrun), the
  per-tenant ledgers sum to the scheduler's global ledger, no DMO
  access ever crosses a tenant boundary
  (``dmo.cross_tenant_denials`` stays 0), and each tenant's live DMO
  bytes agree with the usage ledger and respect its byte budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Tuple


@dataclass
class Violation:
    """One invariant violation, stamped with its virtual-time context."""

    monitor: str
    component: str
    message: str
    time_us: float
    #: trace context (trace_id, span_id) active when the violation was
    #: raised, when a tracer was installed
    trace: Optional[Tuple[int, int]] = None

    def __str__(self) -> str:
        where = f" [{self.component}]" if self.component else ""
        return (f"invariant violation at t={self.time_us:.2f}µs "
                f"({self.monitor}{where}): {self.message}")


class InvariantViolation(RuntimeError):
    """Raised by a strict CheckPlane when a monitor reports a violation."""

    def __init__(self, violation: Violation):
        super().__init__(str(violation))
        self.violation = violation


class SchedulerMonitor:
    """DRR quantum conservation + no-starvation for a NicScheduler."""

    name = "scheduler"

    def __init__(self, scheduler, starvation_bound_us: float = 50_000.0,
                 tolerance_us: float = 1e-3):
        self.scheduler = scheduler
        self.component = getattr(scheduler, "node_name", "nic")
        self.starvation_bound_us = starvation_bound_us
        self.tolerance_us = tolerance_us
        #: actor name -> (last time progress was observed, requests_seen
        #: at that time); progress resets the starvation clock
        self._progress: Dict[str, Tuple[float, int]] = {}
        self._starved: set = set()

    def check(self, now: float) -> Iterator[str]:
        sched = self.scheduler
        outstanding = sum(a.deficit for a in sched.drr_runnable)
        granted = sched.quantum_granted_us
        spent = sched.deficit_spent_us
        forfeited = sched.deficit_forfeited_us
        imbalance = granted - spent - forfeited - outstanding
        tol = max(self.tolerance_us, 1e-9 * abs(granted))
        if abs(imbalance) > tol:
            yield (f"DRR quantum not conserved: granted {granted:.3f}µs != "
                   f"spent {spent:.3f} + forfeited {forfeited:.3f} + "
                   f"outstanding {outstanding:.3f} (off by {imbalance:+.3f}µs)")
        for actor in sched.actors:
            if not actor.is_drr and actor.deficit:
                yield (f"actor {actor.name!r} holds {actor.deficit:.3f}µs of "
                       f"deficit outside the DRR group")
        # No-starvation: a runnable DRR actor with backlog must make
        # progress (requests_seen advances) within the bound.
        runnable = {a.name for a in sched.drr_runnable}
        for actor in sched.drr_runnable:
            if not actor.mailbox or not actor.schedulable:
                self._progress.pop(actor.name, None)
                continue
            last = self._progress.get(actor.name)
            if last is None or actor.requests_seen != last[1]:
                self._progress[actor.name] = (now, actor.requests_seen)
                self._starved.discard(actor.name)
                continue
            waited = now - last[0]
            if waited > self.starvation_bound_us and actor.name not in self._starved:
                self._starved.add(actor.name)
                yield (f"DRR actor {actor.name!r} starved: "
                       f"{len(actor.mailbox)} queued requests and no "
                       f"progress for {waited:.0f}µs "
                       f"(bound {self.starvation_bound_us:.0f}µs)")
        for gone in [n for n in self._progress if n not in runnable]:
            self._progress.pop(gone, None)
            self._starved.discard(gone)


class DmoMonitor:
    """Object/region containment for a DmoManager."""

    name = "dmo"

    def __init__(self, dmo, component: str = ""):
        self.dmo = dmo
        self.component = component

    def check(self, now: float) -> Iterator[str]:
        dmo = self.dmo
        seen: Dict[int, Any] = {}
        usage: Dict[str, int] = {}
        for location, table in dmo.tables.items():
            for obj in table.objects():
                if obj.object_id in seen:
                    yield (f"object {obj.object_id} (actor {obj.actor!r}) "
                           f"present in both the {seen[obj.object_id].value} "
                           f"and {location.value} tables")
                else:
                    seen[obj.object_id] = location
                if obj.location is not location:
                    yield (f"object {obj.object_id} sits in the "
                           f"{location.value} table but claims location "
                           f"{obj.location.value}")
                usage[obj.actor] = usage.get(obj.actor, 0) + obj.size
        for actor, region in dmo.regions.items():
            used = getattr(region, "used", None)
            capacity = getattr(region, "capacity", None)
            if used is None or capacity is None:
                continue
            if not 0 <= used <= capacity:
                yield (f"region of {actor!r} out of bounds: "
                       f"used {used}B not in [0, {capacity}]B")
            live = usage.get(actor, 0)
            if used != live:
                yield (f"region of {actor!r} accounts {used}B but live "
                       f"objects total {live}B")


class RingMonitor:
    """Head/tail and slot accounting for one channel Ring."""

    name = "ring"

    def __init__(self, ring):
        self.ring = ring
        self.component = ring.name

    def check(self, now: float) -> Iterator[str]:
        ring = self.ring
        buffered = len(ring._buffer)
        if ring.produced != ring.consumed + buffered:
            yield (f"slot leak: produced {ring.produced} != consumed "
                   f"{ring.consumed} + buffered {buffered}")
        total = ring._producer_free + buffered + ring._consumed_since_sync
        if total != ring.slots:
            yield (f"free-slot accounting broken: free "
                   f"{ring._producer_free} + buffered {buffered} + "
                   f"unsynced {ring._consumed_since_sync} != "
                   f"{ring.slots} slots")
        if not 0 <= ring._producer_free <= ring.slots:
            yield (f"producer free-count {ring._producer_free} outside "
                   f"[0, {ring.slots}]")
        last_visible = -1.0
        for _msg, _checksum, visible_at in ring._buffer:
            if visible_at < last_visible:
                yield (f"visibility order broken: slot visible at "
                       f"{visible_at:.3f}µs behind predecessor at "
                       f"{last_visible:.3f}µs")
                break
            last_visible = visible_at


class ChannelMonitor:
    """Sequence monotonicity + at-most-once delivery for a ReliableChannel."""

    name = "channel"

    def __init__(self, rchannel):
        self.rchannel = rchannel
        self.component = rchannel.channel.to_host.node_name
        #: direction -> key -> highest release point seen so far
        self._high: Dict[str, Dict[str, int]] = {}

    def check(self, now: float) -> Iterator[str]:
        for direction, state in self.rchannel._dirs.items():
            high = self._high.setdefault(direction, {})
            for key, expected in state.expected.items():
                prev = high.get(key, 0)
                if expected < prev:
                    yield (f"{direction} release sequence for key {key!r} "
                           f"went backwards: {expected} after {prev}")
                else:
                    high[key] = expected
                released = state.released.get(key, 0)
                if released != expected:
                    yield (f"{direction} delivery for key {key!r} broken: "
                           f"released {released} messages but release "
                           f"point is {expected} (at-most-once/in-order "
                           f"breach)")
            for (key, seq) in state.stash:
                if seq < state.expected.get(key, 0):
                    yield (f"{direction} stash holds key {key!r} seq {seq} "
                           f"below its release point "
                           f"{state.expected.get(key, 0)} (duplicate kept)")


class _GroupCommitHook:
    """Installed as ``node.checker`` — forwards commits to the monitor."""

    __slots__ = ("monitor", "group")

    def __init__(self, monitor: "PaxosMonitor", group: str):
        self.monitor = monitor
        self.group = group

    def note_commit(self, node_name: str, instance: int, value: Any) -> None:
        self.monitor.on_commit(self.group, node_name, instance, value)


class PaxosMonitor:
    """Single-value-per-slot across every watched replica group.

    Commits are checked twice: synchronously via the node's ``checker``
    hook (so a conflicting commit raises inside the offending call
    stack, with the handler's span still open) and by a periodic rescan
    of every replica's log (catching direct log corruption).
    """

    name = "paxos"

    def __init__(self, plane=None):
        #: back-reference for synchronous reporting; set by CheckPlane
        self.plane = plane
        self.component = ""
        self.groups: Dict[str, List[Any]] = {}
        #: (group, instance) -> (value, first committing node)
        self._chosen: Dict[Tuple[str, int], Tuple[Any, str]] = {}
        self._pending: List[str] = []

    def watch(self, group: str, node) -> None:
        """Register one replica; installs the node's commit hook."""
        members = self.groups.setdefault(group, [])
        if node not in members:
            members.append(node)
        node.checker = _GroupCommitHook(self, group)

    def on_commit(self, group: str, node_name: str, instance: int,
                  value: Any) -> None:
        key = (group, instance)
        prior = self._chosen.get(key)
        if prior is None:
            self._chosen[key] = (value, node_name)
            return
        if prior[0] != value:
            message = (f"group {group!r} instance {instance}: node "
                       f"{node_name!r} committed {value!r} but node "
                       f"{prior[1]!r} already committed {prior[0]!r}")
            if self.plane is not None:
                self.plane.report(self, message, component=group)
            else:
                self._pending.append(message)

    def check(self, now: float) -> Iterator[str]:
        pending, self._pending = self._pending, []
        yield from pending
        for group, members in self.groups.items():
            chosen: Dict[int, Tuple[Any, str]] = {}
            for node in members:
                for instance, entry in node.log.items():
                    if not entry.committed:
                        continue
                    prior = chosen.get(instance)
                    if prior is None:
                        chosen[instance] = (entry.value, node.name)
                    elif prior[0] != entry.value:
                        yield (f"group {group!r} instance {instance}: "
                               f"log of {node.name!r} holds {entry.value!r} "
                               f"but {prior[1]!r} holds {prior[0]!r}")


class SteeringMonitor:
    """Steering safety across epochs (SteerPlane, §5 extension).

    Scans the controller's decision and delivery ledgers incrementally:

    * **ownership** — every routing decision and every delivery lands on
      the backend that owns the flow's key *in the epoch stamped on the
      request* (forwarded packets are restamped with the post-repoint
      epoch, so the forwarding window satisfies this by construction);
    * **affinity** — within one epoch a flow never changes backend;
    * **exactly-once** — no request uid is handed to a live actor on two
      *different* backends in the *same* epoch (a retransmit answered by
      the same backend is the retry path, not a violation; a re-delivery
      in a later epoch is the client restearing after a move).
    """

    name = "steering"

    def __init__(self, controller):
        self.controller = controller
        self.component = "steerplane"
        self._decision_idx = 0
        self._delivery_idx = 0
        #: (service, flow, epoch) -> backend pinned first
        self._affinity: Dict[Tuple[str, str, int], str] = {}
        #: (service, uid) -> {epoch: backend first delivered to}
        self._delivered: Dict[Tuple[str, Any], Dict[int, str]] = {}

    def _owner_ok(self, service: str, epoch: int, flow: str,
                  backend: str) -> Optional[str]:
        owner = self.controller.owner_at(service, epoch, flow)
        if owner is not None and owner != backend:
            return (f"service {service!r} epoch {epoch} flow {flow!r}: "
                    f"routed to {backend!r} but epoch owner is {owner!r}")
        return None

    def check(self, now: float) -> Iterator[str]:
        decisions = self.controller.decisions
        while self._decision_idx < len(decisions):
            _, service, flow, backend, epoch = decisions[self._decision_idx]
            self._decision_idx += 1
            bad = self._owner_ok(service, epoch, flow, backend)
            if bad is not None:
                yield "decision: " + bad
            key = (service, flow, epoch)
            pinned = self._affinity.setdefault(key, backend)
            if pinned != backend:
                yield (f"affinity: service {service!r} flow {flow!r} "
                       f"epoch {epoch}: pinned to {pinned!r} but steered "
                       f"to {backend!r}")
        deliveries = self.controller.deliveries
        while self._delivery_idx < len(deliveries):
            (_, service, uid, backend,
             epoch, flow) = deliveries[self._delivery_idx]
            self._delivery_idx += 1
            bad = self._owner_ok(service, epoch, flow, backend)
            if bad is not None:
                yield "delivery: " + bad
            if uid is None:
                continue
            seen = self._delivered.setdefault((service, uid), {})
            first = seen.setdefault(epoch, backend)
            if first != backend:
                yield (f"exactly-once: service {service!r} request "
                       f"{uid!r} epoch {epoch}: delivered to {backend!r} "
                       f"after {first!r}")


class PlanMonitor:
    """Planned placement holds until the first reactive override.

    Registered by the scenario builder when a spec carries placement
    pins (:attr:`~repro.scenario.spec.AppSpec.placement`, the output of
    :func:`repro.plan.apply_placement`).  For each planned
    ``(server, actor, device)`` the monitor asserts
    ``actor.location == device`` — *until* the runtime's reactive
    machinery takes the actor over: a migration in flight
    (``migration_state != RUNNING``) or a completed
    :class:`~repro.core.migration.MigrationReport` naming the actor
    permanently releases it (the plan is the start state, not a cage; a
    DRR downgrade under pressure is correct behaviour, not a violation).
    A crashed/missing actor is skipped, not released — it must come back
    up on its planned device.
    """

    name = "plan"

    def __init__(self):
        self.component = "planplane"
        #: server -> runtime
        self._runtimes: Dict[str, Any] = {}
        #: (server, actor) -> planned device ("nic" | "host")
        self._planned: Dict[Tuple[str, str], str] = {}
        #: placements the reactive scheduler has overridden
        self._released: set = set()
        self._flagged: set = set()

    def watch(self, server: str, runtime, placements) -> None:
        """Register one runtime's planned ``(actor, device)`` pairs."""
        self._runtimes[server] = runtime
        for actor, device in placements:
            self._planned[(server, actor)] = device

    @property
    def watched(self) -> int:
        return len(self._planned)

    @property
    def overridden(self) -> int:
        """Placements the reactive scheduler has since taken over."""
        return len(self._released)

    def check(self, now: float) -> Iterator[str]:
        from ..core import MigrationState
        for server in sorted(self._runtimes):
            runtime = self._runtimes[server]
            migrator = getattr(runtime, "migrator", None)
            migrated = {r.actor for r in migrator.reports} \
                if migrator is not None else set()
            table = getattr(runtime, "actors", None)
            if table is None:
                continue
            for (srv, name), device in sorted(self._planned.items()):
                if srv != server:
                    continue
                key = (srv, name)
                if key in self._released:
                    continue
                if name in migrated:
                    self._released.add(key)
                    continue
                actor = table.lookup(name)
                if actor is None:
                    continue            # down; must restart as planned
                if actor.migration_state is not MigrationState.RUNNING:
                    self._released.add(key)     # override in flight
                    continue
                if actor.location.value != device and key not in self._flagged:
                    self._flagged.add(key)
                    yield (f"actor {name!r} on {server} runs on "
                           f"{actor.location.value} but the plan places "
                           f"it on {device} (no reactive override seen)")


class PulseMonitor:
    """PulsePlane zero-cost + conservative-accounting invariants.

    * **passivity** — the sampling pass (probes + SLO evaluation) never
      schedules an event: the plane's ``passive_schedules`` counter (the
      engine's sequence number diffed across each pass) stays zero.
    * **lattice** — samples land exactly on the period lattice
      ``k * period_us`` and sample times are strictly increasing (the
      lazy sampler stamps boundaries, never wall arrival times).
    * **conservative breaches** — every counted breach/recovery is
      backed by a recorded transition whose burn rates clear (for a
      breach) the evaluator's threshold, transitions alternate
      breach/recover, and ``in_breach`` agrees with the last transition.
    """

    name = "pulse"

    def __init__(self, pulse):
        self.pulse = pulse
        self.component = "pulseplane"
        self._last_sample_us: Optional[float] = None
        #: per-evaluator count of transitions already audited
        self._audited: Dict[int, int] = {}

    def check(self, now: float) -> Iterator[str]:
        pulse = self.pulse
        if pulse.passive_schedules:
            yield (f"passivity: {pulse.passive_schedules} sampling "
                   f"pass(es) scheduled events")
        period = pulse.period_us
        last = pulse.last_sample_us
        if last is not None:
            if abs(last / period - round(last / period)) > 1e-9:
                yield (f"lattice: sample at t={last!r} is off the "
                       f"{period:g}us period lattice")
            if self._last_sample_us is not None \
                    and last < self._last_sample_us:
                yield (f"lattice: sample time went backwards "
                       f"({self._last_sample_us!r} -> {last!r})")
            self._last_sample_us = last
        for evaluator in getattr(pulse, "_evaluators", ()):
            yield from self._audit(evaluator)

    def _audit(self, ev) -> Iterator[str]:
        transitions = ev.transitions
        breaches = sum(1 for _, kind, _, _ in transitions
                       if kind == "breach")
        recoveries = len(transitions) - breaches
        if ev.breaches != breaches or ev.recoveries != recoveries:
            yield (f"accounting: slo {ev.name!r} counts "
                   f"{ev.breaches}/{ev.recoveries} breaches/recoveries "
                   f"but history records {breaches}/{recoveries}")
        start = self._audited.get(id(ev), 0)
        for idx in range(start, len(transitions)):
            t, kind, burn_fast, burn_slow = transitions[idx]
            expected = "breach" if idx % 2 == 0 else "recover"
            if kind != expected:
                yield (f"accounting: slo {ev.name!r} transition {idx} "
                       f"at t={t:g} is {kind!r}, expected {expected!r}")
            if kind == "breach" and (burn_fast < ev.burn_threshold
                                     or burn_slow < ev.burn_threshold):
                yield (f"accounting: slo {ev.name!r} breach at t={t:g} "
                       f"with burns {burn_fast:.3f}/{burn_slow:.3f} "
                       f"below threshold {ev.burn_threshold:g}")
        self._audited[id(ev)] = len(transitions)
        if transitions:
            last_kind = transitions[-1][1]
            if ev.in_breach != (last_kind == "breach"):
                yield (f"accounting: slo {ev.name!r} in_breach="
                       f"{ev.in_breach} disagrees with last transition "
                       f"{last_kind!r}")


class TenantMonitor:
    """Multi-tenant isolation invariants (docs/TENANCY.md).

    Registered by the scenario builder when a spec declares tenants
    (:attr:`~repro.scenario.spec.ScenarioSpec.tenants`); one monitor
    watches every runtime in the testbed.  All checks are read-only
    scans of ledgers the scheduler and DMO layer maintain anyway, so
    the monitor adds zero virtual-time cost:

    * **per-tenant conservation** — for every tenant ``t`` on every
      scheduler, ``granted[t] == spent[t] + forfeited[t] + Σ deficit``
      of tenant-``t`` runnable actors (the per-tenant refinement of the
      SchedulerMonitor's global invariant);
    * **no share overrun** — no tenant spends quantum it was never
      granted (``spent[t] <= granted[t]``): a tenant exceeding its
      hierarchical-DRR share would have to, since grants are
      share-scaled;
    * **ledger agreement** — the per-tenant dicts sum to the
      scheduler's global conservation ledger;
    * **tenant boundary** — ``dmo.cross_tenant_denials`` stays 0; any
      increment is reported naming the offending actor and both
      tenants (from ``dmo.last_cross_tenant``);
    * **byte budgets** — each tenant's live DMO bytes (recomputed from
      the object tables) agree with the manager's usage ledger and
      never exceed the tenant's configured budget.
    """

    name = "tenancy"

    def __init__(self, tolerance_us: float = 1e-3):
        self.component = "tenantplane"
        self.tolerance_us = tolerance_us
        #: server -> runtime
        self._runtimes: Dict[str, Any] = {}
        #: server -> cross-tenant denial count already reported
        self._denials_reported: Dict[str, int] = {}

    def watch(self, server: str, runtime) -> None:
        """Register one runtime's scheduler + DMO manager."""
        self._runtimes[server] = runtime

    @property
    def watched(self) -> int:
        return len(self._runtimes)

    def check(self, now: float) -> Iterator[str]:
        for server in sorted(self._runtimes):
            runtime = self._runtimes[server]
            yield from self._check_scheduler(server, runtime.nic_scheduler)
            yield from self._check_dmo(server, runtime.dmo)

    def _check_scheduler(self, server: str, sched) -> Iterator[str]:
        granted = sched.tenant_granted_us
        spent = sched.tenant_spent_us
        forfeited = sched.tenant_forfeited_us
        outstanding: Dict[str, float] = {}
        for actor in sched.drr_runnable:
            tenant = getattr(actor, "tenant", "")
            outstanding[tenant] = outstanding.get(tenant, 0.0) + actor.deficit
        tenants = set(granted) | set(spent) | set(forfeited) | set(outstanding)
        for tenant in sorted(tenants):
            g = granted.get(tenant, 0.0)
            s = spent.get(tenant, 0.0)
            f = forfeited.get(tenant, 0.0)
            o = outstanding.get(tenant, 0.0)
            tol = max(self.tolerance_us, 1e-9 * abs(g))
            label = tenant or "implicit"
            imbalance = g - s - f - o
            if abs(imbalance) > tol:
                yield (f"tenant {label!r} on {server}: DRR quantum not "
                       f"conserved: granted {g:.3f}µs != spent {s:.3f} + "
                       f"forfeited {f:.3f} + outstanding {o:.3f} "
                       f"(off by {imbalance:+.3f}µs)")
            if s > g + tol:
                yield (f"tenant {label!r} on {server}: share overrun: "
                       f"spent {s:.3f}µs against only {g:.3f}µs granted")
        for kind, per_tenant, total in (
                ("granted", granted, sched.quantum_granted_us),
                ("spent", spent, sched.deficit_spent_us),
                ("forfeited", forfeited, sched.deficit_forfeited_us)):
            agg = sum(per_tenant.values())
            tol = max(self.tolerance_us, 1e-9 * abs(total))
            if abs(agg - total) > tol:
                yield (f"{server}: per-tenant {kind} ledger sums to "
                       f"{agg:.3f}µs but the global ledger holds "
                       f"{total:.3f}µs")

    def _check_dmo(self, server: str, dmo) -> Iterator[str]:
        denials = dmo.cross_tenant_denials
        if denials > self._denials_reported.get(server, 0):
            self._denials_reported[server] = denials
            last = dmo.last_cross_tenant
            if last is not None:
                actor, mine, owner, theirs = last
                yield (f"cross-tenant DMO access on {server}: actor "
                       f"{actor!r} (tenant {mine or 'implicit'!r}) touched "
                       f"an object of {owner!r} (tenant "
                       f"{theirs or 'implicit'!r}); {denials} denial(s) "
                       f"so far")
            else:
                yield (f"cross-tenant DMO access on {server}: "
                       f"{denials} denial(s) with no offender recorded")
        live: Dict[str, int] = {}
        for table in dmo.tables.values():
            for obj in table.objects():
                tenant = dmo.tenant_of(obj.actor)
                if tenant:
                    live[tenant] = live.get(tenant, 0) + obj.size
        ledger = dmo._tenant_used
        for tenant in sorted(set(live) | set(ledger)):
            used = ledger.get(tenant, 0)
            actual = live.get(tenant, 0)
            if used != actual:
                yield (f"tenant {tenant!r} on {server}: usage ledger "
                       f"claims {used}B but live objects total {actual}B")
            budget = dmo._tenant_budget.get(tenant)
            if budget is not None and used > budget:
                yield (f"tenant {tenant!r} on {server}: {used}B live "
                       f"exceeds the {budget}B budget")
