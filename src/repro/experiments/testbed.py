"""Testbed assembly: a thin imperative wrapper over the scenario layer.

Mirrors the paper's 8-node testbed (§2.2.1/§5.1): Supermicro servers with
a SmartNIC each behind one ToR switch, plus client boxes with dumb NICs
running the workload generator.  All actual construction lives in
:mod:`repro.scenario.build`; this module keeps the familiar
``make_testbed`` / ``add_server`` / ``add_client`` surface for
experiments that wire deployments by hand.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from ..core import SchedulerConfig
from ..net import Fabric, Packet
from ..nic import LIQUIDIO_CN2350, NicSpec
from ..scenario.build import ClientPort, Server, make_fabric, make_server
from ..scenario.spec import FabricSpec, RackSpec
from ..sim import Simulator

__all__ = ["ClientPort", "Server", "Testbed", "make_testbed"]


@dataclass
class Testbed:
    """A simulated deployment: fabric, servers, and client endpoints."""

    sim: Simulator
    network: Fabric
    servers: Dict[str, Server] = field(default_factory=dict)
    client_receivers: Dict[str, Callable[[Packet], None]] = field(default_factory=dict)

    def server(self, name: str) -> Server:
        return self.servers[name]

    def add_server(self, name: str, nic_spec: NicSpec = LIQUIDIO_CN2350,
                   config: Optional[SchedulerConfig] = None,
                   host_workers: int = 4,
                   host_cores: Optional[int] = None,
                   reliable: bool = False,
                   fault_plane=None,
                   recovery=None,
                   system: str = "ipipe",
                   rack: Optional[str] = None) -> Server:
        if rack is not None:
            self.network.place(name, rack)
        server = make_server(self.sim, self.network, name, nic_spec,
                             system=system, config=config,
                             host_workers=host_workers,
                             host_cores=host_cores, reliable=reliable,
                             fault_plane=fault_plane, recovery=recovery)
        self.servers[name] = server
        return server

    def add_client(self, name: str, rack: Optional[str] = None) -> ClientPort:
        """A client box with a dumb NIC (Intel XL710-style endpoint)."""
        port = ClientPort(self.sim, self.network, name)
        self.network.attach(name, port.receive, rack=rack)
        return port


def make_testbed(bandwidth_gbps: float = 10, seed: int = 42,
                 fabric: Optional[FabricSpec] = None,
                 racks: Optional[list] = None) -> Testbed:
    """One rack by default; pass ``fabric``/``racks`` for a multi-rack
    testbed built through the scenario fabric layer."""
    sim = Simulator()
    spec = fabric or FabricSpec(bandwidth_gbps=bandwidth_gbps)
    rack_specs = racks if racks is not None else [RackSpec(name="rack0")]
    network = make_fabric(sim, spec, rack_specs)
    return Testbed(sim=sim, network=network)
