"""Testbed assembly helpers: servers with SmartNICs, clients, clusters.

Mirrors the paper's 8-node testbed (§2.2.1/§5.1): Supermicro servers with
a SmartNIC each behind one ToR switch, plus client boxes with dumb NICs
running the workload generator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..core import IPipeRuntime, SchedulerConfig
from ..host import HostMachine
from ..net import ClosedLoopGenerator, Network, OpenLoopGenerator, Packet
from ..nic import LIQUIDIO_CN2350, NicSpec, SmartNic, host_for
from ..sim import Rng, Simulator


@dataclass
class Server:
    """One server box: host machine + SmartNIC + iPipe runtime."""

    name: str
    nic: SmartNic
    machine: HostMachine
    runtime: IPipeRuntime


@dataclass
class Testbed:
    """A simulated rack: one switch, servers, and client endpoints."""

    sim: Simulator
    network: Network
    servers: Dict[str, Server] = field(default_factory=dict)
    client_receivers: Dict[str, Callable[[Packet], None]] = field(default_factory=dict)

    def server(self, name: str) -> Server:
        return self.servers[name]

    def add_server(self, name: str, nic_spec: NicSpec = LIQUIDIO_CN2350,
                   config: Optional[SchedulerConfig] = None,
                   host_workers: int = 4,
                   host_cores: Optional[int] = None,
                   reliable: bool = False,
                   fault_plane=None,
                   recovery=None) -> Server:
        nic = SmartNic(self.sim, nic_spec, name=f"{name}.nic")
        machine = HostMachine(self.sim, host_for(nic_spec), name=name,
                              cores=host_cores or host_for(nic_spec).cores)
        runtime = IPipeRuntime(self.sim, nic, machine, self.network, name,
                               config=config, host_workers=host_workers,
                               reliable=reliable, fault_plane=fault_plane,
                               recovery=recovery)
        server = Server(name=name, nic=nic, machine=machine, runtime=runtime)
        self.servers[name] = server
        return server

    def add_client(self, name: str) -> "ClientPort":
        """A client box with a dumb NIC (Intel XL710-style endpoint)."""
        port = ClientPort(self, name)
        self.network.attach(name, port.receive)
        return port


class ClientPort:
    """Receive demux for a client node: routes replies to generators."""

    def __init__(self, testbed: Testbed, name: str):
        self.testbed = testbed
        self.name = name
        self._generators: List[ClosedLoopGenerator] = []
        self.received: int = 0

    def receive(self, packet: Packet) -> None:
        self.received += 1
        for gen in self._generators:
            gen.on_reply(packet)

    def closed_loop(self, dst: str, clients: int, size: int,
                    payload_factory=None, rng: Optional[Rng] = None,
                    think_time_us: float = 0.0) -> ClosedLoopGenerator:
        gen = ClosedLoopGenerator(
            self.testbed.sim, send=self.testbed.network.send,
            src=self.name, dst=dst, clients=clients, size=size,
            payload_factory=payload_factory, rng=rng,
            think_time_us=think_time_us)
        self._generators.append(gen)
        return gen

    def open_loop(self, dst: str, rate_mpps: float, size: int,
                  payload_factory=None, rng: Optional[Rng] = None,
                  poisson: bool = True) -> OpenLoopGenerator:
        return OpenLoopGenerator(
            self.testbed.sim, send=self.testbed.network.send,
            src=self.name, dst=dst, rate_mpps=rate_mpps, size=size,
            payload_factory=payload_factory, rng=rng, poisson=poisson)


def make_testbed(bandwidth_gbps: float = 10, seed: int = 42) -> Testbed:
    sim = Simulator()
    network = Network(sim, bandwidth_gbps=bandwidth_gbps)
    return Testbed(sim=sim, network=network)
