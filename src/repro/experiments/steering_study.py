"""Steering study: connection-consistent load balancing under rack loss.

The SteerPlane acceptance scenario (see ``docs/FAULTS.md``): a sharded
RKV service behind an epoch-versioned Maglev VIP across three racks,
an open-loop client fleet steering by connection, and a scheduled rack
outage in the middle of the run.  The :class:`~repro.net.steering.Rebalancer`
sees the outage coming, live-migrates the doomed shard to a spare server
in another rack (drain → checkpoint → restore → repoint), and
repatriates it when the rack returns — while the client keeps sending.

Asserted invariants:

* **zero loss** — every request is answered despite the rack outage and
  two live migrations in the middle of the request stream;
* **steering safety** — the :class:`~repro.check.SteeringMonitor`
  observed no request delivered to a backend that does not own its key
  in the request's steering epoch, no affinity break within an epoch,
  and no request handed to two different backends in the same epoch;
* **evacuated / returned** — the shard actually left the doomed rack
  before the outage and was repatriated after it.

Usage::

    PYTHONPATH=src python -m repro.experiments.steering_study --seed 42

Returns a :class:`~repro.experiments.chaos_study.ChaosReport` whose
``steering`` dict (epochs, forwards, suppressions, moves) folds into the
replay fingerprint — the CI smoke replays the scenario and requires
bit-identical fingerprints.
"""

from __future__ import annotations

import argparse
from typing import Dict

from ..check import CheckPlane
from ..net import Packet
from ..scenario import (
    AppSpec,
    ClientSpec,
    FaultDecl,
    ObsSpec,
    RackSpec,
    RebalanceSpec,
    ScenarioSpec,
    ServerSpec,
    SteeringSpec,
    build,
)
from ..sim import FaultKind, Simulator, Timeout, spawn
from .chaos_study import (
    ChaosClient,
    ChaosReport,
    _collect,
    _finish_trace,
    _run_until_answered,
)


class SteeredChaosClient(ChaosClient):
    """ChaosClient speaking to a VIP: stable per-connection steering keys
    and an explicit request uid for exactly-once accounting.

    The uid survives retransmission (same rid → same uid), so a
    retransmit racing a repoint is *supposed* to reach the same logical
    request twice on the wire — the suppression/exactly-once machinery
    must collapse it to one delivery.
    """

    def __init__(self, *args, connections: int = 6, **kwargs):
        super().__init__(*args, **kwargs)
        self.connections = connections

    def decorate(self, pkt: Packet, rid: int) -> None:
        pkt.meta["req_uid"] = ("req", rid)
        pkt.meta["steer_key"] = f"{self.name}:conn{rid % self.connections}"


def rebalance_spec(seed: int = 42, duration_us: float = 40_000.0,
                   notice_us: float = 6_000.0,
                   trace: bool = False) -> ScenarioSpec:
    """Three racks, two servers each; the rkv shards live on the first
    server of every rack, leaving the second as migration headroom."""

    def rack(i: int) -> RackSpec:
        servers = tuple(
            ServerSpec(name=f"r{i}s{j}", host_workers=2, reliable=True,
                       scheduler=(("migration_enabled", False),))
            for j in range(2))
        clients = (ClientSpec("client0"),) if i == 0 else ()
        return RackSpec(name=f"rack{i}", servers=servers, clients=clients)

    shard_homes = ("r0s0", "r1s0", "r2s0")
    return ScenarioSpec(
        name="steering-rebalance", seed=seed, duration_us=duration_us,
        racks=tuple(rack(i) for i in range(3)),
        apps=(AppSpec(kind="rkv", servers=shard_homes, shards=3,
                      options=(("memtable_limit", 256 * 1024),)),),
        steering=(SteeringSpec(service="rkv", app="rkv",
                               window_us=1_500.0),),
        rebalance=RebalanceSpec(notice_us=notice_us),
        faults=(FaultDecl(kind=FaultKind.RACK_DOWN, target="rack1",
                          at_us=(duration_us * 0.45,),
                          duration_us=duration_us * 0.25),),
        observability=ObsSpec(trace=trace,
                              recovery_restart_delay_us=100.0))


def run_rebalance_chaos(seed: int = 42, duration_us: float = 40_000.0,
                        n_requests: int = 64, send_gap_us: float = 400.0,
                        connections: int = 6, notice_us: float = 6_000.0,
                        trace: bool = False) -> ChaosReport:
    """Live cross-rack migration under a scheduled rack outage."""
    spec = rebalance_spec(seed=seed, duration_us=duration_us,
                          notice_us=notice_us, trace=trace)
    sim = Simulator()
    if getattr(sim, "checker", None) is None:
        # outside a SanitizerSession: attach our own (non-strict, so the
        # report carries violations instead of aborting mid-run)
        CheckPlane(sim, strict=False)
    bed = build(spec, sim=sim)
    tplane = bed.trace_plane
    plane = bed.fault_plane
    controller = bed.steering
    rebalancer = bed.rebalancer
    client = SteeredChaosClient(bed.sim, bed.network, name="client0",
                                timeout_us=2_500.0,
                                port=bed.clients["client0"],
                                connections=connections)

    value = bytes(64)

    def driver():
        for i in range(n_requests):
            conn = i % connections
            key = f"conn{conn}:k{i % 7}"
            if i % 3 == 2:
                client.request("svc:rkv", "rkv-get", {"key": key}, size=96)
            else:
                client.request("svc:rkv", "rkv-put",
                               {"key": key, "value": value}, size=192)
            yield Timeout(send_gap_us)

    spawn(bed.sim, driver(), name="steer-driver")
    _run_until_answered(bed, client, duration_us)

    injected, schedule, recovery = _collect(bed, plane)
    checker = getattr(bed.sim, "checker", None)
    steer_violations = [v for v in checker.violations
                        if v.monitor == "steering"] if checker else []
    runtimes = [srv.runtime for _, srv in sorted(bed.servers.items())]
    moves = tuple((round(t, 3), svc, home, src, dst)
                  for t, svc, home, src, dst in rebalancer.moves)
    evacuated = any(src == "r1s0" for _, _, _, src, _ in moves)
    returned = all(cur == home
                   for home, cur in rebalancer.placement.items())
    steering: Dict[str, object] = {
        "epochs": controller.service("rkv").epoch,
        "steered": controller.steered,
        "forwarded": sum(r.forwarded_cross_rack for r in runtimes),
        "suppressed": sum(r.steer_suppressed for r in runtimes),
        "deliveries": len(controller.deliveries),
        "moves": moves,
    }
    return ChaosReport(
        workload="steering", seed=seed, requests=n_requests,
        answered=client.answered, lost=client.lost,
        client_retransmits=client.retransmits,
        duplicate_replies=client.duplicate_replies,
        duration_us=bed.sim.now,
        faults_injected=injected, fault_schedule=schedule,
        recovery=recovery,
        invariants={
            "zero_loss": client.lost == 0,
            "steering_safety": not steer_violations,
            "evacuated": evacuated,
            "returned": returned,
        },
        steering=steering,
        stage_latencies=_finish_trace(tplane),
        trace_plane=tplane,
    )


def rebalance_point(**kwargs) -> Dict[str, object]:
    """Grid/CI entry point: one steering-chaos run as a plain record."""
    return run_rebalance_chaos(**kwargs).to_record()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="SteerPlane chaos: rack outage with live migration")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--duration", type=float, default=40_000.0,
                        metavar="US")
    parser.add_argument("--requests", type=int, default=64)
    parser.add_argument("--notice", type=float, default=6_000.0,
                        metavar="US", help="evacuation head start")
    parser.add_argument("--trace-out", default=None, metavar="PATH",
                        help="write a Chrome trace of the run")
    args = parser.parse_args(argv)
    report = run_rebalance_chaos(seed=args.seed, duration_us=args.duration,
                                 n_requests=args.requests,
                                 notice_us=args.notice,
                                 trace=args.trace_out is not None)
    print(report.summary())
    st = report.steering
    print(f"  steering: {st['epochs']} epoch bumps, "
          f"{st['steered']} steered, {st['forwarded']} forwarded, "
          f"{st['suppressed']} duplicates suppressed")
    for t, svc, home, src, dst in st["moves"]:
        print(f"  move @{t:10.1f}us {svc}: {src} -> {dst} (home {home})")
    if args.trace_out and report.trace_plane is not None:
        events = report.trace_plane.export_chrome(args.trace_out)
        print(f"  trace: {events} events -> {args.trace_out}")
    return 0 if report.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
