"""Experiment harnesses: one module per paper table/figure.

* ``characterization`` — §2 (Tables 1-3, Figures 2-10)
* ``scheduler_study`` — §5.4 (Figure 16)
* ``applications`` — §5.2/5.3/5.5 (Figures 13-15, 17)
* ``migration_study`` — Appendix B.3 (Figure 18)
* ``netfns`` — §5.6 (Floem) and §5.7 (firewall, IPsec)
* ``testbed`` — rack assembly shared by all of the above
* ``report`` — plain-text table/series rendering
"""

from .testbed import ClientPort, Server, Testbed, make_testbed
from .report import render_series, render_table

__all__ = [
    "ClientPort",
    "Server",
    "Testbed",
    "make_testbed",
    "render_series",
    "render_table",
]
