"""Tiny plain-text table/series rendering for bench output.

The benchmark harnesses print the same rows/series the paper's tables and
figures report; these helpers keep that output aligned and greppable.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def render_table(rows: Sequence[Sequence[str]], title: str = "") -> str:
    """Fixed-width table from rows of strings (first row = header)."""
    if not rows:
        return title
    cells = [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells if i < len(row))
              for i in range(max(len(r) for r in cells))]
    lines: List[str] = []
    if title:
        lines.append(title)
    for idx, row in enumerate(cells):
        line = "  ".join(c.ljust(widths[i]) for i, c in enumerate(row))
        lines.append(line.rstrip())
        if idx == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def render_series(name: str, xs: Iterable, ys: Iterable,
                  xfmt: str = "{}", yfmt: str = "{:.2f}") -> str:
    """One figure series as 'name: x=y x=y ...'."""
    pairs = " ".join(
        f"{xfmt.format(x)}={yfmt.format(y)}" for x, y in zip(xs, ys))
    return f"{name}: {pairs}"
