"""Figure 18: actor migration cost breakdown (Appendix B.3).

Eight actors from the three applications are force-migrated to the host
under 90% networking load after a warm-up; the elapsed time of each of
the four migration phases is reported.  Phase 3 (moving the distributed
objects over PCIe) dominates — the LSM Memtable actor's ~32MB takes tens
of milliseconds — with phase 4 (forwarding buffered requests) second.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..core import Actor
from ..core.migration import MigrationReport
from ..nic import LIQUIDIO_CN2350, NicSpec
from ..nic.cores import WorkloadProfile
from ..scenario import (
    ClientSpec,
    FabricSpec,
    RackSpec,
    ScenarioSpec,
    ServerSpec,
    build,
)
from ..sim import Rng, spawn

#: The eight actors of Figure 18 with representative DMO state sizes.
#: The LSM Memtable carries ~32MB (its full Memtable object); protocol
#: actors carry small tables; workers carry window/rank state.
FIG18_ACTORS = (
    ("filter", 64 * 1024, 2.0),
    ("count", 2 * 1024 * 1024, 3.2),
    ("rank", 1 * 1024 * 1024, 34.0),
    ("coord", 4 * 1024 * 1024, 2.4),
    ("parti", 8 * 1024 * 1024, 2.0),
    ("consensus", 4 * 1024 * 1024, 1.9),
    ("lsmmem", 32 * 1024 * 1024, 4.0),
    ("kvcache", 16 * 1024 * 1024, 3.7),
)


def run_migration_breakdown(spec: NicSpec = LIQUIDIO_CN2350,
                            load: float = 0.9,
                            warmup_us: float = 5_000.0,
                            seed: int = 21) -> List[MigrationReport]:
    """Force-migrate each Figure-18 actor under load; returns the reports."""
    reports: List[MigrationReport] = []
    for name, state_bytes, exec_us in FIG18_ACTORS:
        report = _migrate_one(spec, name, state_bytes, exec_us, load,
                              warmup_us, seed)
        if report is not None:
            reports.append(report)
    return reports


def _migrate_one(spec: NicSpec, name: str, state_bytes: int, exec_us: float,
                 load: float, warmup_us: float, seed: int
                 ) -> Optional[MigrationReport]:
    bed = build(ScenarioSpec(
        name=f"fig18-{name}", seed=seed,
        racks=(RackSpec(
            name="rack0",
            servers=(ServerSpec(name="server", nic=spec, host_workers=4,
                                scheduler=(("migration_enabled", False),)),),
            clients=(ClientSpec("client"),)),),
        fabric=FabricSpec(bandwidth_gbps=spec.bandwidth_gbps)))
    server = bed.servers["server"]

    def handler(actor, msg, ctx):
        yield ctx.compute(us=exec_us)
        if msg.packet is not None:
            ctx.reply(msg, size=64)

    actor = Actor(name, handler, concurrent=True,
                  profile=WorkloadProfile(name, exec_us, 1.2, 1.0),
                  state_bytes=state_bytes)
    runtime = server.runtime
    runtime.register_actor(actor, steering_keys=[name, "data"])
    # the actor's DMO state (what phase 3 must move)
    chunk = 1 << 20
    remaining = state_bytes
    while remaining > 0:
        size = min(chunk, remaining)
        runtime.dmo.malloc(name, size, data=bytes(8))
        remaining -= size

    # 90% *networking* load: fraction of line rate at 512B frames, capped
    # by what the actor's handlers can absorb without unbounded queueing
    from ..net import line_rate_pps
    line = line_rate_pps(spec.bandwidth_gbps, 512) / 1e6
    capacity = 0.9 * spec.cores / max(exec_us, 0.5)
    rate_mpps = load * min(line, capacity)
    client = bed.clients["client"]
    gen = client.open_loop(dst="server", rate_mpps=rate_mpps, size=512,
                           rng=Rng(seed))

    holder: Dict[str, MigrationReport] = {}

    def force():
        result = yield from runtime.migrator.migrate_to_host(actor)
        holder["report"] = result

    bed.sim.call_at(warmup_us, lambda: spawn(bed.sim, force()))
    deadline = warmup_us + 400_000.0
    while "report" not in holder and bed.sim.now < deadline:
        bed.sim.run(until=bed.sim.now + 5_000.0)
    gen.stop()
    runtime.stop()
    return holder.get("report")


@dataclass
class BreakdownRow:
    actor: str
    phase1_us: float
    phase2_us: float
    phase3_us: float
    phase4_us: float

    @property
    def total_ms(self) -> float:
        return (self.phase1_us + self.phase2_us
                + self.phase3_us + self.phase4_us) / 1000.0


def breakdown_rows(reports: List[MigrationReport]) -> List[BreakdownRow]:
    return [
        BreakdownRow(
            actor=r.actor,
            phase1_us=r.phase_us.get(1, 0.0),
            phase2_us=r.phase_us.get(2, 0.0),
            phase3_us=r.phase_us.get(3, 0.0),
            phase4_us=r.phase_us.get(4, 0.0),
        )
        for r in reports
    ]


def phase_share(reports: List[MigrationReport], phase: int) -> float:
    """Average share of migration time spent in a phase across actors."""
    shares = [r.share(phase) for r in reports if r.total_us > 0]
    return sum(shares) / len(shares) if shares else 0.0
