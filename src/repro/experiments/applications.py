"""Application experiments: Figures 13–15, 17 and §5.6/§5.7.

Deployments mirror §5.1: each application runs on three servers behind
one ToR switch — the RTA worker on each server, DT coordinator on one
server with participants on two, RKV leader plus two followers — with a
client box running the closed-loop workload generator.

Two systems share the identical application wiring classes:

* ``ipipe`` — SmartNIC servers running the full runtime;
* ``dpdk``  — host-only servers behind dumb NICs (the baseline).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..baselines import DpdkRuntime
from ..nic import LIQUIDIO_CN2350, LIQUIDIO_CN2360, NicSpec
from ..scenario import (
    AppSpec,
    ClientSpec,
    FabricSpec,
    FleetSpec,
    RackSpec,
    ScenarioSpec,
    ServerSpec,
    build,
)
from ..workloads import value_bytes_for_packet

#: each paper application's request stream (§5.1)
APP_WORKLOADS = {"rta": "twitter", "dt": "txn", "rkv": "kv"}

APPS = ("rta", "dt", "rkv")
#: Figure 13's five measured roles → (app, server index).
ROLES = {
    "rta-worker": ("rta", 0),
    "dt-coordinator": ("dt", 0),
    "dt-participant": ("dt", 1),
    "rkv-leader": ("rkv", 0),
    "rkv-follower": ("rkv", 1),
}
PACKET_SIZES = (64, 256, 512, 1024)


@dataclass
class AppRunResult:
    """Measured outcome of one (system, app, size) deployment."""

    system: str
    app: str
    nic_model: str
    packet_size: int
    duration_us: float
    completed: int
    mean_latency_us: float
    p99_latency_us: float
    host_cores: Dict[str, float]        # per server
    nic_cores: Dict[str, float]

    @property
    def throughput_mops(self) -> float:
        return self.completed / self.duration_us

    def per_core_tput(self, server: str) -> float:
        cores = max(self.host_cores.get(server, 0.0), 0.05)
        return self.throughput_mops / cores


def deployment_spec(system: str, app: str, nic_spec: NicSpec,
                    packet_size: int, clients: int, duration_us: float,
                    seed: int, prefill_keys: int = 4000) -> ScenarioSpec:
    """The §5.1 deployment as data: three servers, one closed-loop fleet."""
    if app not in APP_WORKLOADS:
        raise ValueError(f"unknown app {app!r}")
    options = []
    if app == "rkv":
        # steady state: the hottest keys are memtable-resident (the
        # paper measures warmed-up systems)
        options = [("prefill_keys", prefill_keys),
                   ("prefill_value_bytes",
                    value_bytes_for_packet(packet_size))]
    return ScenarioSpec(
        name=f"{system}-{app}", seed=seed, duration_us=duration_us,
        racks=(RackSpec(
            name="rack0",
            servers=tuple(ServerSpec(name=f"s{i}", nic=nic_spec,
                                     system=system) for i in range(3)),
            clients=(ClientSpec("client"),)),),
        fabric=FabricSpec(bandwidth_gbps=nic_spec.bandwidth_gbps),
        apps=(AppSpec(kind=app, servers=("s0", "s1", "s2"), leader="s0",
                      options=tuple(options)),),
        fleets=(FleetSpec(client="client", dst="s0", mode="closed",
                          clients=clients, size=packet_size,
                          workload=APP_WORKLOADS[app], seed=seed),))


def run_app(system: str, app: str, nic_spec: NicSpec = LIQUIDIO_CN2350,
            packet_size: int = 512, clients: int = 48,
            duration_us: float = 20_000.0, seed: int = 5,
            warmup_fraction: float = 0.25,
            prefill_keys: int = 4000) -> AppRunResult:
    """One deployment driven closed-loop at its natural max throughput."""
    scenario = build(deployment_spec(system, app, nic_spec, packet_size,
                                     clients, duration_us, seed,
                                     prefill_keys=prefill_keys))
    sim = scenario.sim
    runtimes = {n: s.runtime for n, s in scenario.servers.items()}
    gen = scenario.generators[0]

    warmup = duration_us * warmup_fraction
    sim.run(until=warmup)
    base_completed = gen.completed
    # reset utilization accounting at the measurement window start
    for runtime in runtimes.values():
        for tracker in runtime.host_util:
            tracker.busy_time = 0.0
        if hasattr(runtime, "nic") and not isinstance(runtime, DpdkRuntime):
            for tracker in runtime.nic.core_util:
                tracker.busy_time = 0.0
    gen.latency.samples.clear()
    sim.run(until=duration_us)
    gen.stop()
    for runtime in runtimes.values():
        runtime.stop()

    window = duration_us - warmup
    host_cores = {n: rt.host_cores_used(window) for n, rt in runtimes.items()}
    nic_cores = {
        n: (rt.nic.cores_used(window)
            if hasattr(rt, "nic") and not isinstance(rt, DpdkRuntime) else 0.0)
        for n, rt in runtimes.items()
    }
    return AppRunResult(
        system=system, app=app, nic_model=nic_spec.model,
        packet_size=packet_size, duration_us=window,
        completed=gen.completed - base_completed,
        mean_latency_us=gen.latency.mean,
        p99_latency_us=gen.latency.p99,
        host_cores=host_cores, nic_cores=nic_cores)


# -- Figure 13: host cores used at max throughput ------------------------------------

def figure13_cell(system: str, role: str, nic_spec: NicSpec,
                  packet_size: int, **kwargs) -> float:
    """Host cores used on the role's server."""
    app, server_idx = ROLES[role]
    result = run_app(system, app, nic_spec=nic_spec,
                     packet_size=packet_size, **kwargs)
    return result.host_cores[f"s{server_idx}"]


def figure13_sweep(nic_spec: NicSpec = LIQUIDIO_CN2360,
                   sizes: Sequence[int] = PACKET_SIZES,
                   roles: Sequence[str] = tuple(ROLES),
                   executor=None,
                   **kwargs) -> Dict[str, Dict[Tuple[str, int], float]]:
    """system → {(role, size): host cores}."""
    out: Dict[str, Dict[Tuple[str, int], float]] = {"dpdk": {}, "ipipe": {}}
    cache: Dict[Tuple[str, str, int], AppRunResult] = {}
    apps = {ROLES[role][0] for role in roles}
    if executor is not None:
        from ..exec.sweep import SweepPoint
        points = [
            SweepPoint((system, app, size), run_app,
                       dict(system=system, app=app, nic_spec=nic_spec,
                            packet_size=size, **kwargs))
            for system in ("dpdk", "ipipe") for app in sorted(apps)
            for size in sizes
        ]
        cache = dict(executor.run(points).results)
    for system in ("dpdk", "ipipe"):
        for role in roles:
            app, server_idx = ROLES[role]
            for size in sizes:
                key = (system, app, size)
                if key not in cache:
                    cache[key] = run_app(system, app, nic_spec=nic_spec,
                                         packet_size=size, **kwargs)
                out[system][(role, size)] = cache[key].host_cores[f"s{server_idx}"]
    return out


# -- Figures 14/15: latency vs per-core throughput ---------------------------------------

def latency_throughput_curve(system: str, app: str,
                             nic_spec: NicSpec = LIQUIDIO_CN2350,
                             packet_size: int = 512,
                             client_counts: Sequence[int] = (1, 2, 4, 8, 16, 32, 64),
                             executor=None,
                             **kwargs) -> List[Tuple[float, float]]:
    """[(per-core Mops, mean latency µs)] for the measured role's server."""
    measured_server = "s0"   # RTA worker / DT coordinator / RKV leader
    if executor is not None:
        from ..exec.sweep import SweepPoint
        points = [
            SweepPoint((system, app, clients), run_app,
                       dict(system=system, app=app, nic_spec=nic_spec,
                            packet_size=packet_size, clients=clients,
                            **kwargs))
            for clients in client_counts
        ]
        merged = executor.run(points).results
        return [(merged[(system, app, clients)].per_core_tput(measured_server),
                 merged[(system, app, clients)].mean_latency_us)
                for clients in client_counts]
    curve = []
    for clients in client_counts:
        result = run_app(system, app, nic_spec=nic_spec,
                         packet_size=packet_size, clients=clients, **kwargs)
        curve.append((result.per_core_tput(measured_server),
                      result.mean_latency_us))
    return curve


# -- Figure 17: iPipe host-only overhead --------------------------------------------------

def overhead_comparison(load_fractions: Sequence[float] = (0.15, 0.25, 0.35),
                        packet_size: int = 512,
                        duration_us: float = 20_000.0,
                        base_clients: int = 16,
                        executor=None) -> List[Tuple[float, float, float]]:
    """[(load, dpdk host µs/op, ipipe-host-only host µs/op)].

    Both deployments are host-only RKV (iPipe with every actor pinned to
    the host); loads are fractions of the closed-loop maximum, kept below
    saturation, and the metric is host CPU per completed operation — the
    "same throughput" normalization §5.5 uses.
    """
    if executor is not None:
        from ..exec.sweep import SweepPoint
        points = [
            SweepPoint((system, frac), run_app,
                       dict(system=system, app="rkv",
                            packet_size=packet_size,
                            clients=max(1, int(base_clients * frac)),
                            duration_us=duration_us))
            for frac in load_fractions
            for system in ("dpdk", "ipipe-hostonly")
        ]
        merged = executor.run(points).results
        return [
            (frac,
             merged[("dpdk", frac)].host_cores["s0"]
             / max(merged[("dpdk", frac)].throughput_mops, 1e-9),
             merged[("ipipe-hostonly", frac)].host_cores["s0"]
             / max(merged[("ipipe-hostonly", frac)].throughput_mops, 1e-9))
            for frac in load_fractions
        ]
    rows = []
    for frac in load_fractions:
        clients = max(1, int(base_clients * frac))
        dpdk = run_app("dpdk", "rkv", packet_size=packet_size,
                       clients=clients, duration_us=duration_us)
        ipipe = run_app("ipipe-hostonly", "rkv", packet_size=packet_size,
                        clients=clients, duration_us=duration_us)
        rows.append((
            frac,
            dpdk.host_cores["s0"] / max(dpdk.throughput_mops, 1e-9),
            ipipe.host_cores["s0"] / max(ipipe.throughput_mops, 1e-9),
        ))
    return rows
