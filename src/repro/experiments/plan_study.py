"""Planner vs reactive-DRR head-to-head (the PlanPlane evaluation).

Three questions, answered on the paper's own workloads:

1. **Steady state** — on the §5.1 three-server deployments of RKV
   (fig17's workload), DT, and RTA (the fig18 actor families), does the
   compiled placement match or beat the reactive scheduler's p99 and
   host-core footprint?  The reactive runtime starts everything on the
   NIC and discovers the right split by migrating under pressure; the
   planner starts *at* the split the profile implies, so it should save
   the convergence transient without hurting the steady state.
2. **Chaos** — applying a plan to the multi-rack chaos scenario (link
   loss + server crashes + recovery) must not break zero-loss recovery:
   faults still inject, recoveries still complete, and the planned
   run's completion count stays within tolerance of the reactive run's.
3. **Determinism** — every planned run replays bit-identically (same
   fingerprint twice), so plans are CI-gateable artifacts.

``python -m repro plan-study`` renders the comparison table; CI runs it
with ``--quick`` in the gated plan pipeline.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..nic import LIQUIDIO_CN2350
from ..plan import PlacementSpec, apply_placement, compute_plan
from ..scenario import ScenarioResult, load_shipped, run_scenario
from .applications import APPS, deployment_spec

#: Completion tolerance for the chaos criterion: a planned placement may
#: shift work but must not cost more than this fraction of completions.
CHAOS_COMPLETION_TOLERANCE = 0.10


@dataclass
class PlanComparison:
    """One workload's planner-vs-reactive outcome."""

    app: str
    plan: PlacementSpec
    planned: ScenarioResult
    reactive: ScenarioResult
    replay_identical: bool

    @property
    def nic_actors(self) -> int:
        return sum(1 for p in self.plan.actors if p.device == "nic")

    @property
    def host_actors(self) -> int:
        return len(self.plan.actors) - self.nic_actors

    def _cores(self, result: ScenarioResult) -> float:
        return sum(result.host_cores.values())

    def row(self) -> List[str]:
        """One rendered table row (see :func:`render_comparison`)."""
        return [
            self.app,
            f"{self.plan.objective_p99_us:.2f}",
            f"{self.planned.p99_latency_us:.2f}",
            f"{self.reactive.p99_latency_us:.2f}",
            f"{self.planned.completed}",
            f"{self.reactive.completed}",
            f"{self._cores(self.planned):.2f}",
            f"{self._cores(self.reactive):.2f}",
            f"{self.nic_actors}/{self.host_actors}",
            "yes" if self.replay_identical else "NO",
        ]


def _run_twice(spec) -> tuple:
    """(result, replay_identical): the determinism leg of the study."""
    first = run_scenario(spec)
    second = run_scenario(spec)
    return first, first.fingerprint() == second.fingerprint()


def compare_app(app: str, clients: int = 24, duration_us: float = 20_000.0,
                seed: int = 5, packet_size: int = 512,
                profile_us: Optional[float] = None) -> PlanComparison:
    """Planner vs reactive on one §5.1 deployment."""
    spec = deployment_spec("ipipe", app, LIQUIDIO_CN2350, packet_size,
                           clients, duration_us, seed)
    plan = compute_plan(spec, profile_us)
    planned_spec = apply_placement(plan, spec)
    planned, identical = _run_twice(planned_spec)
    reactive = run_scenario(spec)
    return PlanComparison(app=app, plan=plan, planned=planned,
                          reactive=reactive, replay_identical=identical)


@dataclass
class ChaosPlanResult:
    """Planned placement under the multi-rack chaos schedule."""

    plan: PlacementSpec
    planned: ScenarioResult
    reactive: ScenarioResult
    replay_identical: bool

    @property
    def recovery_intact(self) -> bool:
        """Chaos actually happened and the planned run still completed
        work through it.  The schedule is link loss under reliable
        channels, so "zero-loss recovery" means retransmission masks
        every drop — fault injection must fire and completions must
        keep flowing (crash/restart schedules additionally surface in
        ``recoveries``, reported alongside)."""
        return (self.planned.faults_injected > 0
                and self._done(self.planned) > 0)

    @property
    def completion_ok(self) -> bool:
        floor = ((1.0 - CHAOS_COMPLETION_TOLERANCE)
                 * self._done(self.reactive))
        return self._done(self.planned) >= floor

    @property
    def ok(self) -> bool:
        return (self.recovery_intact and self.completion_ok
                and self.replay_identical)

    @staticmethod
    def _done(result: ScenarioResult) -> int:
        return result.completed or sum(result.client_received.values())

    def describe(self) -> str:
        planned, reactive = self._done(self.planned), self._done(self.reactive)
        return (f"chaos ({self.planned.name}): planned {planned} vs "
                f"reactive {reactive} completions, faults "
                f"{self.planned.faults_injected}, recoveries "
                f"{self.planned.recoveries}, replay identical: "
                f"{'yes' if self.replay_identical else 'NO'} -> "
                f"{'OK' if self.ok else 'BROKEN'}")


def chaos_plan(duration_us: Optional[float] = None,
               profile_us: Optional[float] = None) -> ChaosPlanResult:
    """Plan the multi-rack chaos scenario and prove recovery survives.

    The profile window *includes* the chaos schedule — the plan is made
    for the faulted world, not a fair-weather one.
    """
    spec = load_shipped("multi-rack-chaos")
    if duration_us is not None:
        spec = dataclasses.replace(spec, duration_us=duration_us)
    plan = compute_plan(spec, profile_us)
    planned_spec = apply_placement(plan, spec)
    planned, identical = _run_twice(planned_spec)
    reactive = run_scenario(spec)
    return ChaosPlanResult(plan=plan, planned=planned, reactive=reactive,
                           replay_identical=identical)


HEADER = ["app", "predicted p99", "planned p99", "reactive p99",
          "planned done", "reactive done", "planned host cores",
          "reactive host cores", "nic/host actors", "replay=="]


def run_study(quick: bool = False) -> Dict[str, object]:
    """The whole study: per-app comparisons + the chaos criterion."""
    kwargs = dict(duration_us=8_000.0, clients=12,
                  profile_us=2_000.0) if quick else {}
    comparisons = [compare_app(app, **kwargs) for app in APPS]
    chaos = chaos_plan(duration_us=10_000.0 if quick else None,
                       profile_us=2_000.0 if quick else None)
    return {"comparisons": comparisons, "chaos": chaos}


def render_comparison(comparisons: List[PlanComparison]) -> List[List[str]]:
    return [HEADER] + [c.row() for c in comparisons]
