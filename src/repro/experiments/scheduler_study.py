"""Figure 16: hybrid scheduler vs standalone FCFS and DRR (§5.4).

The workload generator replays per-actor request traces with Poisson
arrivals.  Two request-cost regimes:

* **low dispersion** — aggregate service times follow an exponential
  distribution (mean 32µs on the LiquidIOII, 27µs on the Stingray) built
  from many near-deterministic actors with different means;
* **high dispersion** — bimodal-2 (b1/b2 = 35/60µs resp. 25/55µs): a
  population of short actors plus a heavy actor receiving ~10% of traffic.

Three scheduler policies run the identical trace:

* ``fcfs``  — downgrades disabled: pure shared-queue FCFS;
* ``drr``   — every actor pre-downgraded to the DRR runnable queue;
* ``ipipe`` — the full hybrid (ALG 1 + ALG 2) with auto-scaling.

The figure reports client-observed P99 sojourn time as load rises.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..core import Actor, SchedulerConfig
from ..core.actor import Location
from ..nic import LIQUIDIO_CN2350, STINGRAY_PS225, NicSpec
from ..scenario import (
    ClientSpec,
    FabricSpec,
    ObsSpec,
    RackSpec,
    ScenarioSpec,
    ServerSpec,
    build,
)
from ..sim import LatencyRecorder, Rng, Timeout

POLICIES = ("fcfs", "drr", "ipipe")

#: Mean service times from §5.4.
MEAN_SERVICE_US = {LIQUIDIO_CN2350.model: 32.0, STINGRAY_PS225.model: 27.0}
#: Bimodal-2 (b1, b2) pairs from §5.4.
BIMODAL_US = {LIQUIDIO_CN2350.model: (35.0, 60.0),
              STINGRAY_PS225.model: (25.0, 55.0)}
#: Measured µ+3σ tail thresholds from §5.4.
TAIL_THRESH_US = {LIQUIDIO_CN2350.model: 52.8, STINGRAY_PS225.model: 44.6}


@dataclass(frozen=True)
class TraceActor:
    """One synthetic application actor in the trace."""

    name: str
    mean_us: float
    sigma: float          # lognormal shape of its per-request cost
    weight: float         # share of total traffic


def low_dispersion_actors(mean_us: float) -> List[TraceActor]:
    """A mix of near-deterministic actors whose aggregate is exponential.

    An exponential can be approximated by a hyper-mixture of deterministic
    stages; eight actors with geometric means and matched weights gets the
    aggregate CV close to 1 while each actor stays low-dispersion.
    """
    means = [mean_us * f for f in (0.15, 0.3, 0.5, 0.75, 1.0, 1.4, 2.2, 3.6)]
    # exponential tilted weights renormalized so Σ w·mean = mean_us
    raw = [math.exp(-m / mean_us) for m in means]
    scale = sum(raw)
    weights = [r / scale for r in raw]
    achieved = sum(w * m for w, m in zip(weights, means))
    means = [m * mean_us / achieved for m in means]
    return [TraceActor(f"app{i}", m, 0.10, w)
            for i, (m, w) in enumerate(zip(means, weights))]


def high_dispersion_actors(b1: float, b2: float, p_heavy: float = 0.10,
                           p_burst: float = 0.002) -> List[TraceActor]:
    """Bimodal-2: short actors at b1 plus a heavy actor at b2.

    b1/b2 are the bimodal fit's cluster centers (§5.4).  The underlying
    application trace additionally contains rare long bursts — the paper's
    §4 calls out exactly these (the ranker's quicksort and LSM compaction
    "could impact the NIC's ability to receive new data tuples") — which is
    what makes the workload *high* dispersion rather than the near-
    deterministic two-point mix the centers alone would suggest.  We model
    them as a 0.2% burst class at 100x b1 (~16% of offered CPU load —
    well below the 1% mark, so P99 measures the interference bursts
    inflict on the short classes rather than the bursts' own service), which
    lifts the aggregate CV^2 above 1 — the regime where processor sharing
    beats FCFS and the paper's Figure-16b separation appears.
    """
    p_short = 1.0 - p_heavy - p_burst
    actors = [TraceActor(f"short{i}", b1, 0.05, p_short / 4)
              for i in range(4)]
    actors.append(TraceActor("heavy", b2, 0.05, p_heavy))
    actors.append(TraceActor("burst", 100.0 * b1, 0.3, p_burst))
    return actors


def _make_handler(recorder: LatencyRecorder):
    def handler(actor, msg, ctx):
        yield Timeout(msg.payload["service_us"])
        recorder.record(ctx.sim.now - msg.meta["nic_arrival"])
        ctx.reply(msg, size=64)
    return handler


def _policy_scheduler(policy: str, spec: NicSpec) -> Tuple[Tuple[str, object], ...]:
    """The policy's SchedulerConfig overrides as declarative spec pairs."""
    tail = TAIL_THRESH_US[spec.model]
    if policy == "fcfs":
        return (("downgrade_enabled", False), ("migration_enabled", False),
                ("autoscale", False))
    if policy == "drr":
        return (("tail_thresh_us", 0.0), ("downgrade_enabled", False),
                ("migration_enabled", False), ("autoscale", False))
    if policy == "ipipe":
        # The full iPipe: downgrade/upgrade + push/pull migration.  Unlike
        # the standalone disciplines, iPipe may shed load to the host when
        # the NIC queues build up — that is the point of the framework.
        return (("tail_thresh_us", tail), ("migration_enabled", True),
                ("autoscale", True))
    raise ValueError(f"unknown policy {policy!r}")


def _policy_config(policy: str, spec: NicSpec) -> SchedulerConfig:
    return SchedulerConfig(**dict(_policy_scheduler(policy, spec)))


def run_point(spec: NicSpec, policy: str, dispersion: str, load: float,
              duration_us: float = 60_000.0, seed: int = 1,
              frame_bytes: int = 512,
              traced: bool = False) -> Tuple[float, ...]:
    """One (policy, dispersion, load) cell → (mean, p99) sojourn in µs.

    With ``traced=True`` a :class:`TracePlane` rides along and the return
    grows a third element: the per-stage p50/p99 table
    (``{stage: {count, p50_us, p99_us, ...}}``) attributing where the
    sojourn time went — queue wait vs service vs channel crossing.
    """
    if dispersion == "low":
        trace = low_dispersion_actors(MEAN_SERVICE_US[spec.model])
    elif dispersion == "high":
        trace = high_dispersion_actors(*BIMODAL_US[spec.model])
    else:
        raise ValueError(f"unknown dispersion {dispersion!r}")

    scenario = build(ScenarioSpec(
        name=f"fig16-{policy}-{dispersion}", seed=seed,
        duration_us=duration_us,
        racks=(RackSpec(
            name="rack0",
            servers=(ServerSpec(name="server", nic=spec,
                                host_workers=4,
                                scheduler=_policy_scheduler(policy, spec)),),
            clients=(ClientSpec("client"),)),),
        fabric=FabricSpec(bandwidth_gbps=spec.bandwidth_gbps),
        observability=ObsSpec(trace=traced)))
    bed = scenario
    tplane = scenario.trace_plane
    server = scenario.servers["server"]
    recorder = LatencyRecorder("sojourn")
    handler = _make_handler(recorder)
    rng = Rng(seed)
    for ta in trace:
        # Trace actors serve requests on any core (the apps provide their
        # own concurrency control, §3.1) — otherwise one hot actor would be
        # single-core bound and the load definition would not hold.
        actor = Actor(ta.name, handler, location=Location.NIC, concurrent=True)
        server.runtime.register_actor(actor)
        if policy == "drr":
            actor.is_drr = True
            server.runtime.nic_scheduler.drr_runnable.append(actor)
    if policy == "drr":
        # all cores run the DRR loop; idle cores pull from the shared
        # queue themselves (work conserving), so no core is sacrificed
        # for dispatch
        modes = server.runtime.nic_scheduler.core_mode
        for core in range(len(modes)):
            modes[core] = "drr"

    mean_service = sum(t.weight * t.mean_us for t in trace)
    rate_mpps = load * spec.cores / mean_service
    cumulative: List[Tuple[float, TraceActor]] = []
    acc = 0.0
    for ta in trace:
        acc += ta.weight
        cumulative.append((acc, ta))

    def payload_factory(i: int):
        u = rng.random()
        chosen = next(ta for threshold, ta in cumulative if u <= threshold + 1e-12)
        return {"actor": chosen.name,
                "service_us": rng.lognormal(chosen.mean_us, chosen.sigma)}

    client = scenario.clients["client"]
    gen = client.open_loop(dst="server", rate_mpps=rate_mpps,
                           size=frame_bytes, payload_factory=payload_factory,
                           rng=rng.fork(99))

    # route by payload: a shim dispatcher keyed on the chosen actor
    runtime = server.runtime
    original = runtime.on_packet

    def routed(packet):
        packet.kind = packet.payload["actor"]
        original(packet)

    server.nic.packet_handler = routed

    bed.sim.run(until=duration_us)
    gen.stop()
    runtime.stop()
    warm = recorder.samples[len(recorder.samples) // 3:]
    warm_rec = LatencyRecorder("warm")
    warm_rec.samples = warm
    if tplane is not None:
        tplane.tracer.close_all()
        return warm_rec.mean, warm_rec.p99, tplane.stage_report()
    return warm_rec.mean, warm_rec.p99


def sweep(spec: NicSpec, dispersion: str,
          loads: Sequence[float] = (0.1, 0.3, 0.5, 0.7, 0.8, 0.9),
          duration_us: float = 60_000.0, seed: int = 1,
          policies: Sequence[str] = POLICIES,
          executor=None) -> Dict[str, List[Tuple[float, float, float]]]:
    """Full Figure-16 panel: policy → [(load, mean, p99), ...].

    ``executor`` routes the grid through a
    :class:`~repro.exec.sweep.ParallelSweep` (process pool and/or result
    cache); the merged output is bit-identical to the serial loop.
    """
    if executor is not None:
        from ..exec.sweep import SweepPoint
        points = [
            SweepPoint((dispersion, policy, load), run_point,
                       dict(spec=spec, policy=policy, dispersion=dispersion,
                            load=load, duration_us=duration_us, seed=seed))
            for policy in policies for load in loads
        ]
        merged = executor.run(points).results
        return {
            policy: [(load, *merged[(dispersion, policy, load)])
                     for load in loads]
            for policy in policies
        }
    results: Dict[str, List[Tuple[float, float, float]]] = {}
    for policy in policies:
        series = []
        for load in loads:
            mean, p99 = run_point(spec, policy, dispersion, load,
                                  duration_us=duration_us, seed=seed)
            series.append((load, mean, p99))
        results[policy] = series
    return results
