"""Section 2 characterization experiments (Figures 2–10, Tables 1–3).

Bandwidth/latency curves come from the calibrated hardware models; the
traffic-manager experiment (Figure 5) additionally runs a real DES with an
ECHO server on the simulated NIC to show the shared-queue scaling property
(latency barely rises from 6 to 12 cores).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..net import Packet, line_rate_pps
from ..nic import (
    ACCELERATORS,
    BLUEFIELD_1M332A,
    DmaEngine,
    HOST_XEON_E5_2680,
    LIQUIDIO_CN2350,
    MemoryHierarchy,
    MICROBENCH_PROFILES,
    RdmaEngine,
    STINGRAY_PS225,
    NicSpec,
    SmartNic,
    echo_cost_us,
    forward_cost_us,
)
from ..nic.calibration import (
    DMA_SIZES,
    FRAME_SIZES,
    MESSAGE_SIZES,
    dpdk_recv_us,
    dpdk_send_us,
    rdma_recv_us,
    rdma_send_us,
    smartnic_recv_us,
    smartnic_send_us,
)
from ..sim import LatencyRecorder, Rng, Simulator, Timeout, spawn


# -- Figures 2 & 3: bandwidth vs NIC core count -----------------------------------

def bandwidth_vs_cores(spec: NicSpec, frame_bytes: int, cores: int) -> float:
    """Achieved Gbps with ``cores`` NIC cores echoing ``frame_bytes`` frames."""
    if cores <= 0:
        return 0.0
    per_core_pps = 1e6 / echo_cost_us(spec, frame_bytes)
    achievable_pps = cores * per_core_pps
    line_pps = line_rate_pps(spec.bandwidth_gbps, frame_bytes)
    achieved = min(achievable_pps, line_pps)
    return achieved * frame_bytes * 8 / 1e9


def figure2_series(spec: NicSpec = LIQUIDIO_CN2350,
                   sizes: Sequence[int] = FRAME_SIZES
                   ) -> Dict[int, List[Tuple[int, float]]]:
    """size → [(cores, Gbps)] for every core count the NIC has."""
    return {
        size: [(cores, bandwidth_vs_cores(spec, size, cores))
               for cores in range(1, spec.cores + 1)]
        for size in sizes
    }


def cores_to_saturate(spec: NicSpec, frame_bytes: int) -> int:
    """Minimum cores achieving line rate; 0 if impossible."""
    for cores in range(1, spec.cores + 1):
        line_gbps = (line_rate_pps(spec.bandwidth_gbps, frame_bytes)
                     * frame_bytes * 8 / 1e9)
        if bandwidth_vs_cores(spec, frame_bytes, cores) >= line_gbps - 1e-9:
            return cores
    return 0


# -- Figure 4: computing headroom --------------------------------------------------

def bandwidth_with_processing(spec: NicSpec, frame_bytes: int,
                              added_latency_us: float) -> float:
    """Gbps when every packet additionally costs ``added_latency_us``."""
    per_pkt = forward_cost_us(spec, frame_bytes) + added_latency_us
    achievable_pps = spec.cores * 1e6 / per_pkt
    line_pps = line_rate_pps(spec.bandwidth_gbps, frame_bytes)
    return min(achievable_pps, line_pps) * frame_bytes * 8 / 1e9


def computing_headroom_us(spec: NicSpec, frame_bytes: int) -> float:
    """Maximum per-packet latency tolerable at line rate (Figure 4)."""
    line_pps = line_rate_pps(spec.bandwidth_gbps, frame_bytes)
    budget = spec.cores * 1e6 / line_pps
    return budget - forward_cost_us(spec, frame_bytes)


# -- Figure 5: traffic manager shared-queue scaling ----------------------------------

@dataclass
class Fig5Point:
    cores: int
    frame_bytes: int
    avg_us: float
    p99_us: float


def traffic_manager_experiment(frame_bytes: int, cores: int,
                               spec: NicSpec = LIQUIDIO_CN2350,
                               duration_us: float = 30_000.0,
                               load: float = 0.95,
                               seed: int = 3) -> Fig5Point:
    """DES: ``cores`` workers pulling an ECHO workload from the shared
    hardware queue near max throughput; reports avg/p99 sojourn."""
    sim = Simulator()
    nic = SmartNic(sim, spec)
    rng = Rng(seed)
    recorder = LatencyRecorder()
    cost = echo_cost_us(spec, frame_bytes)
    capacity_pps = min(cores * 1e6 / cost,
                       line_rate_pps(spec.bandwidth_gbps, frame_bytes))
    rate_per_us = load * capacity_pps / 1e6

    def worker(core_id: int):
        while True:
            pkt = yield nic.traffic_manager.pop()
            yield Timeout(nic.traffic_manager.dequeue_sync_us)
            yield Timeout(cost)
            recorder.record(sim.now - pkt.created_at)

    for core in range(cores):
        spawn(sim, worker(core))

    def generator():
        while True:
            yield Timeout(rng.poisson_interarrival(rate_per_us))
            nic.traffic_manager.push(
                Packet("gen", "nic", frame_bytes, created_at=sim.now))

    spawn(sim, generator())
    sim.run(until=duration_us)
    warm = recorder.samples[len(recorder.samples) // 5:]
    rec = LatencyRecorder()
    rec.samples = warm
    return Fig5Point(cores=cores, frame_bytes=frame_bytes,
                     avg_us=rec.mean, p99_us=rec.p99)


def traffic_manager_from_spec(scenario_spec, frame_bytes: int, cores: int,
                              **kwargs) -> Fig5Point:
    """Figure 5 driven by a ScenarioSpec: the NIC model and seed come
    from the spec's first server (the experiment itself runs entirely
    inside that NIC — no fabric is involved)."""
    from ..scenario import resolve_nic
    server = scenario_spec.racks[0].servers[0]
    return traffic_manager_experiment(frame_bytes, cores,
                                      spec=resolve_nic(server.nic),
                                      seed=scenario_spec.seed, **kwargs)


def figure5_panel(sizes: Sequence[int] = (64, 512, 1024, 1500),
                  cores: Sequence[int] = (6, 12),
                  duration_us: float = 25_000.0,
                  executor=None) -> Dict[Tuple[int, int], Fig5Point]:
    """The full Figure-5 grid: (frame_bytes, cores) → :class:`Fig5Point`.

    ``executor`` routes the grid through a
    :class:`~repro.exec.sweep.ParallelSweep`; results are bit-identical
    to the serial loop.
    """
    if executor is not None:
        from ..exec.sweep import SweepPoint
        points = [
            SweepPoint((size, n), traffic_manager_experiment,
                       dict(frame_bytes=size, cores=n,
                            duration_us=duration_us))
            for size in sizes for n in cores
        ]
        return dict(executor.run(points).results)
    return {(size, n): traffic_manager_experiment(size, n,
                                                  duration_us=duration_us)
            for size in sizes for n in cores}


# -- Figure 6: messaging latency -------------------------------------------------------

def figure6_series() -> Dict[str, List[Tuple[int, float]]]:
    fns = {
        "SmartNIC-send": smartnic_send_us,
        "SmartNIC-recv": smartnic_recv_us,
        "DPDK-send": dpdk_send_us,
        "DPDK-recv": dpdk_recv_us,
        "RDMA-send": rdma_send_us,
        "RDMA-recv": rdma_recv_us,
    }
    return {name: [(s, fn(s)) for s in MESSAGE_SIZES]
            for name, fn in fns.items()}


# -- Figures 7-10: DMA and RDMA curves ---------------------------------------------------

def figure7_series() -> Dict[str, List[Tuple[int, float]]]:
    dma = DmaEngine(Simulator())
    return {
        "DMA blocking read": [(s, dma.read_latency_us(s)) for s in DMA_SIZES],
        "DMA non-blocking read": [(s, dma.read_latency_us(s, blocking=False))
                                  for s in DMA_SIZES],
        "DMA blocking write": [(s, dma.write_latency_us(s)) for s in DMA_SIZES],
        "DMA non-blocking write": [(s, dma.write_latency_us(s, blocking=False))
                                   for s in DMA_SIZES],
    }


def figure8_series() -> Dict[str, List[Tuple[int, float]]]:
    dma = DmaEngine(Simulator())
    return {
        "DMA blocking read": [(s, dma.read_throughput_mops(s)) for s in DMA_SIZES],
        "DMA non-blocking read": [(s, dma.read_throughput_mops(s, blocking=False))
                                  for s in DMA_SIZES],
        "DMA blocking write": [(s, dma.write_throughput_mops(s)) for s in DMA_SIZES],
        "DMA non-blocking write": [(s, dma.write_throughput_mops(s, blocking=False))
                                   for s in DMA_SIZES],
    }


def figure9_series() -> Dict[str, List[Tuple[int, float]]]:
    rdma = RdmaEngine(Simulator())
    return {
        "RDMA one-sided read": [(s, rdma.read_latency_us(s)) for s in DMA_SIZES],
        "RDMA one-sided write": [(s, rdma.write_latency_us(s)) for s in DMA_SIZES],
    }


def figure10_series() -> Dict[str, List[Tuple[int, float]]]:
    rdma = RdmaEngine(Simulator())
    return {
        "RDMA one-sided read": [(s, rdma.read_throughput_mops(s)) for s in DMA_SIZES],
        "RDMA one-sided write": [(s, rdma.write_throughput_mops(s)) for s in DMA_SIZES],
    }


# -- Table 2: pointer chasing ---------------------------------------------------------------

def table2_rows() -> List[Tuple[str, str, str, str, str]]:
    rows = [("Device", "L1 (ns)", "L2 (ns)", "L3 (ns)", "DRAM (ns)")]
    devices = [
        ("LiquidIOII CNXX", MemoryHierarchy.for_nic(LIQUIDIO_CN2350)),
        ("BlueField 1M332A", MemoryHierarchy.for_nic(BLUEFIELD_1M332A)),
        ("Stingray PS225", MemoryHierarchy.for_nic(STINGRAY_PS225)),
        ("Host Intel server", MemoryHierarchy.for_host(HOST_XEON_E5_2680)),
    ]
    for name, mem in devices:
        # pointer-chase at footprints that land in each level
        l1 = mem.chase_latency_ns(mem.l1_bytes // 2)
        l2 = mem.chase_latency_ns(mem.l1_bytes + (mem.l2_bytes - mem.l1_bytes) // 2)
        l3 = (mem.chase_latency_ns((mem.l2_bytes + mem.l3_bytes) // 2)
              if mem.l3_bytes else None)
        dram_probe = max(mem.l3_bytes, mem.l2_bytes) * 8
        dram = mem.chase_latency_ns(dram_probe)
        rows.append((name, f"{l1:.1f}", f"{l2:.1f}",
                     "N/A" if l3 is None else f"{l3:.1f}", f"{dram:.1f}"))
    return rows


# -- Table 3: microbenchmark suite -------------------------------------------------------------

def table3_rows() -> List[Tuple[str, ...]]:
    rows = [("Application", "Exec. Lat.(us)", "IPC", "MPKI",
             "Host Lat.(us)", "Host speedup")]
    from ..nic import host_speedup, time_on_host
    for prof in MICROBENCH_PROFILES.values():
        rows.append((
            prof.name,
            f"{prof.exec_us:.2f}",
            f"{prof.ipc:.1f}",
            f"{prof.mpki:.1f}",
            f"{time_on_host(prof, HOST_XEON_E5_2680):.2f}",
            f"{host_speedup(prof, HOST_XEON_E5_2680):.1f}x",
        ))
    return rows


def table3_accel_rows() -> List[Tuple[str, ...]]:
    rows = [("Accelerator", "IPC", "MPKI", "bsz=1", "bsz=8", "bsz=32")]
    for prof in ACCELERATORS.values():
        rows.append((
            prof.name.upper(), f"{prof.ipc:.1f}", f"{prof.mpki:.1f}",
            f"{prof.lat_us_b1:.1f}",
            "N/A" if prof.lat_us_b8 is None else f"{prof.lat_us_b8:.1f}",
            "N/A" if prof.lat_us_b32 is None else f"{prof.lat_us_b32:.1f}",
        ))
    return rows
