"""SLO study: burn-rate breach detection driving load-based migration.

The PulsePlane acceptance scenario (see ``docs/OBSERVABILITY.md``): a
steered single-shard RKV service, a well-behaved *victim* client holding
an SLO (``rkv p99 < T over 2ms``), and an *aggressor* fleet that starts
hammering the shard's home server mid-run.  The pulse sampler watches
per-server NIC utilization and the victim's windowed p99; the sequence
the study asserts is the whole closed loop:

1. **breach** — the aggressor drives the victim's p99 over the SLO
   threshold; the multi-window burn-rate evaluator raises ``slo.breach``;
2. **migration** — the :class:`~repro.obs.pulse.LoadFeed` publishes the
   sustained utilization skew to the
   :class:`~repro.net.steering.Rebalancer`, which live-migrates the
   shard to the least-loaded server (``load_moves`` > 0) — *without* any
   fault: this is load-driven rebalancing, not outage evacuation;
3. **recovery** — steered victim traffic follows the repoint, its p99
   falls back under the threshold, and the evaluator emits
   ``slo.recover`` after a full window of in-budget samples.

The ordering breach → migration → recovery is asserted on virtual
timestamps, the run replays bit-identically (the PulsePlane telemetry —
sample CRC, SLO transitions, load migrations — folds into the
:class:`~repro.experiments.chaos_study.ChaosReport` fingerprint), and
the strict PulseMonitor invariants (zero-cost sampling, conservative
breach accounting) hold throughout.

Usage::

    PYTHONPATH=src python -m repro.experiments.slo_study --seed 42
"""

from __future__ import annotations

import argparse

from ..check import CheckPlane
from ..net import Packet
from ..scenario import (
    AppSpec,
    ClientSpec,
    ObsSpec,
    PulseSpec,
    RackSpec,
    RebalanceSpec,
    ScenarioSpec,
    ServerSpec,
    SLOSpec,
    SteeringSpec,
    build,
)
from ..sim import Simulator, Timeout, spawn
from .chaos_study import ChaosReport, _finish_trace, _run_until_answered
from .steering_study import SteeredChaosClient


def slo_spec(seed: int = 42, duration_us: float = 40_000.0,
             threshold_us: float = 150.0, period_us: float = 500.0,
             trace: bool = False) -> ScenarioSpec:
    """Two racks, two servers each; the single rkv shard homes on r0s0
    (the aggressor's target), leaving three servers as headroom."""

    def rack(i: int) -> RackSpec:
        servers = tuple(
            ServerSpec(name=f"r{i}s{j}", host_workers=2, reliable=True,
                       scheduler=(("migration_enabled", False),))
            for j in range(2))
        clients = ((ClientSpec("aggr0"),) if i == 0
                   else (ClientSpec("victim0"),))
        return RackSpec(name=f"rack{i}", servers=servers, clients=clients)

    return ScenarioSpec(
        name="slo-rebalance", seed=seed, duration_us=duration_us,
        racks=tuple(rack(i) for i in range(2)),
        apps=(AppSpec(kind="rkv", servers=("r0s0",), shards=1,
                      options=(("memtable_limit", 256 * 1024),)),),
        steering=(SteeringSpec(service="rkv", app="rkv",
                               window_us=1_500.0),),
        # sustain long enough that the burn-rate breach (which needs a
        # full fast window of bad samples) fires before the migration —
        # the study asserts the breach -> migrate -> recover ordering
        rebalance=RebalanceSpec(on_load=True, sustain_periods=10),
        observability=ObsSpec(
            trace=trace,
            recovery_restart_delay_us=100.0,
            pulse=PulseSpec(period_us=period_us),
            slos=(SLOSpec(service="rkv", threshold_us=threshold_us,
                          pct=99.0, window_us=2_000.0),)))


def run_slo_chaos(seed: int = 42, duration_us: float = 40_000.0,
                  n_requests: int = 80, send_gap_us: float = 400.0,
                  connections: int = 4,
                  aggressor_start_us: float = 8_000.0,
                  aggressor_stop_us: float = 30_000.0,
                  aggressor_gap_us: float = 4.0,
                  threshold_us: float = 150.0,
                  trace: bool = False) -> ChaosReport:
    """Aggressor-vs-victim: SLO breach → load-driven migration → recovery."""
    spec = slo_spec(seed=seed, duration_us=duration_us,
                    threshold_us=threshold_us, trace=trace)
    sim = Simulator()
    if getattr(sim, "checker", None) is None:
        # outside a SanitizerSession: attach our own (non-strict, so the
        # report carries violations instead of aborting mid-run)
        CheckPlane(sim, strict=False)
    bed = build(spec, sim=sim)
    tplane = bed.trace_plane
    pulse = bed.pulse_plane
    rebalancer = bed.rebalancer
    victim = SteeredChaosClient(bed.sim, bed.network, name="victim0",
                                timeout_us=2_500.0,
                                port=bed.clients["victim0"],
                                connections=connections)

    value = bytes(64)

    def victim_driver():
        for i in range(n_requests):
            key = f"conn{i % connections}:k{i % 7}"
            if i % 3 == 2:
                victim.request("svc:rkv", "rkv-get", {"key": key}, size=96)
            else:
                victim.request("svc:rkv", "rkv-put",
                               {"key": key, "value": value}, size=192)
            yield Timeout(send_gap_us)

    def aggressor_driver():
        # fire-and-forget gets straight at the shard's home server (not
        # the VIP: the aggressor's load must NOT follow the migration).
        # After the shard moves away the runtime drops the unknown kind
        # at near-zero cost — the contention is gone for the victim.
        yield Timeout(aggressor_start_us)
        i = 0
        while bed.sim.now < aggressor_stop_us:
            pkt = Packet("aggr0", "r0s0", 256, kind="rkv-get",
                         payload={"key": f"hot{i % 8}"},
                         created_at=bed.sim.now)
            bed.network.send(pkt)
            i += 1
            yield Timeout(aggressor_gap_us)

    spawn(bed.sim, victim_driver(), name="slo-victim")
    spawn(bed.sim, aggressor_driver(), name="slo-aggressor")
    _run_until_answered(bed, victim, duration_us)

    checker = getattr(bed.sim, "checker", None)
    pulse_violations = [v for v in checker.violations
                        if v.monitor == "pulse"] if checker else []
    evaluator = pulse._evaluators[0]
    breach_t = next((t for t, kind, _, _ in evaluator.transitions
                     if kind == "breach"), None)
    recover_t = next((t for t, kind, _, _ in evaluator.transitions
                      if kind == "recover"), None)
    move_t = rebalancer.moves[0][0] if rebalancer.moves else None
    ordered = (breach_t is not None and move_t is not None
               and recover_t is not None
               and breach_t <= move_t <= recover_t)
    return ChaosReport(
        workload="slo", seed=seed, requests=n_requests,
        answered=victim.answered, lost=victim.lost,
        client_retransmits=victim.retransmits,
        duplicate_replies=victim.duplicate_replies,
        duration_us=bed.sim.now,
        recovery={},
        invariants={
            "zero_loss": victim.lost == 0,
            "breach_detected": evaluator.breaches >= 1,
            "migrated_on_load": rebalancer.load_moves >= 1,
            "slo_recovered": (evaluator.recoveries >= 1
                              and not evaluator.in_breach),
            "breach_before_move_before_recovery": ordered,
            "pulse_invariants": not pulse_violations,
        },
        pulse=pulse.telemetry(),
        stage_latencies=_finish_trace(tplane),
        trace_plane=tplane,
        pulse_plane=pulse,
    )


def slo_point(**kwargs):
    """Grid/CI entry point: one SLO study run as a plain record."""
    return run_slo_chaos(**kwargs).to_record()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="PulsePlane SLO study: breach -> migration -> recovery")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--duration", type=float, default=40_000.0,
                        metavar="US")
    parser.add_argument("--requests", type=int, default=80)
    parser.add_argument("--threshold", type=float, default=150.0,
                        metavar="US", help="victim p99 SLO threshold")
    parser.add_argument("--pulse-csv", default=None, metavar="PATH",
                        help="export the sampled time series as CSV")
    parser.add_argument("--pulse-trace", default=None, metavar="PATH",
                        help="export Perfetto counter tracks (JSON)")
    args = parser.parse_args(argv)
    report = run_slo_chaos(seed=args.seed, duration_us=args.duration,
                           n_requests=args.requests,
                           threshold_us=args.threshold)
    print(report.summary())
    pt = report.pulse
    print(f"  pulse: {pt['samples']} samples, {pt['series']} series, "
          f"crc={pt['store_crc']:#010x}, "
          f"passive_schedules={pt['passive_schedules']}")
    for t, home, dst in pt.get("load_migrations", ()):
        print(f"  load migration @{t:10.1f}us: shard {home} -> {dst}")
    for name, t, kind in pt.get("slo_transitions", ()):
        print(f"  slo {name}: {kind} @{t:10.1f}us")
    if args.pulse_csv:
        rows = report.pulse_plane.export_csv(args.pulse_csv)
        print(f"  pulse csv: {rows} rows -> {args.pulse_csv}")
    if args.pulse_trace:
        events = report.pulse_plane.export_chrome(args.pulse_trace)
        print(f"  pulse trace: {events} counter events -> {args.pulse_trace}")
    return 0 if report.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
