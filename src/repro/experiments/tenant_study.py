"""Tenant study: noisy-neighbor isolation under hierarchical DRR.

The TenantPlane acceptance scenario (see ``docs/TENANCY.md``): one
SmartNIC server hosting three tenants' apps side by side — a *victim*
tenant running RKV, a *batch* tenant running DT, and an *aggressor*
tenant running RTA — plus a chaos fault schedule (wire loss + torn DMA)
so isolation is proved under recovery traffic, not just clean load.
The study runs the same workload three ways:

1. **solo** — victim + batch only: the victim's baseline p99;
2. **isolation off** — the aggressor floods its RTA pipeline; tenants
   are declared (so every ledger and monitor runs) but carry *no*
   shares, so the scheduler serves everyone flat and the victim's p99
   collapses;
3. **isolation on** — identical traffic, but the tenants carry
   NIC-core shares: hierarchical DRR scales the aggressor's quantum
   grants down to its share, the aggressor's accelerator use is
   rate-limited, and its DMO bytes are capped.

The acceptance criteria: with isolation on the victim's p99 stays
within 25% of solo; with isolation off it degrades at least 2x; the
:class:`~repro.check.monitors.TenantMonitor` reports zero violations
throughout (no cross-tenant DMO access, per-tenant quantum
conservation); and the whole study replays bit-identically (the
per-run ChaosReport fingerprints fold into one study fingerprint).

Usage::

    PYTHONPATH=src python -m repro.experiments.tenant_study --seed 42
"""

from __future__ import annotations

import argparse
from typing import Dict, List, Optional, Tuple

from ..check import CheckPlane
from ..net import Packet
from ..scenario import (
    AppSpec,
    ClientSpec,
    FaultDecl,
    ObsSpec,
    PulseSpec,
    RackSpec,
    ScenarioSpec,
    ServerSpec,
    TenantSpec,
    build,
)
from ..sim import FaultKind, Simulator, Timeout, spawn
from .chaos_study import (
    ChaosClient,
    ChaosReport,
    _collect,
    _finish_trace,
    _run_until_answered,
)

#: NIC-core shares when isolation is on (sum <= 1 by spec validation).
VICTIM_SHARE = 0.85
AGGRESSOR_SHARE = 0.05
BATCH_SHARE = 0.1


def _p99(values: List[float]) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    idx = min(int(0.99 * len(ordered)), len(ordered) - 1)
    return ordered[idx]


def tenant_spec(isolation: bool, seed: int = 42,
                duration_us: float = 40_000.0, loss: float = 0.0,
                alive_cores: int = 2, core_fail_at_us: float = 1_000.0,
                period_us: float = 500.0,
                trace: bool = False) -> ScenarioSpec:
    """One rack, two servers; every tenant's app homes on s0 (the
    contended NIC), the DT participant rides on s1.  The *same* tenants
    are declared in both modes — isolation off only drops the shares,
    so actor tagging, ledgers and monitors are identical and the p99
    delta is attributable to the shares alone."""
    if isolation:
        tenants = (
            TenantSpec(name="victim", nic_core_share=VICTIM_SHARE,
                       dmo_budget_bytes=64 << 20,
                       slos=("rkv p99 < 400us over 2ms",)),
            TenantSpec(name="aggressor", nic_core_share=AGGRESSOR_SHARE,
                       dmo_budget_bytes=64 << 20),
            TenantSpec(name="batch", nic_core_share=BATCH_SHARE),
        )
    else:
        tenants = (
            TenantSpec(name="victim",
                       slos=("rkv p99 < 400us over 2ms",)),
            TenantSpec(name="aggressor"),
            TenantSpec(name="batch"),
        )
    return ScenarioSpec(
        name=f"tenant-{'isolated' if isolation else 'flat'}",
        seed=seed, duration_us=duration_us,
        racks=(RackSpec(
            name="rack0",
            servers=tuple(
                # a low tail threshold pushes every actor into the DRR
                # pool once the flood queues build, so the per-tenant
                # quantum scaling (not FCFS luck) decides who runs
                ServerSpec(name=n, host_workers=2, reliable=True,
                           scheduler=(("migration_enabled", False),
                                      ("tail_thresh_us", 8.0),
                                      ("mean_thresh_us", 4.0)))
                for n in ("s0", "s1")),
            clients=(ClientSpec("victim0"), ClientSpec("aggr0"),
                     ClientSpec("batch0"))),),
        apps=(
            AppSpec(kind="rkv", servers=("s0",), shards=1, tenant="victim",
                    options=(("memtable_limit", 256 * 1024),)),
            AppSpec(kind="dt", servers=("s0", "s1"), tenant="batch",
                    options=(("log_segment_bytes", 1 << 20),)),
            AppSpec(kind="rta", servers=("s0",), tenant="aggressor"),
        ),
        tenants=tenants,
        faults=tuple(
            [FaultDecl(kind=FaultKind.LINK_LOSS, target="*",
                       probability=loss)] if loss > 0 else []
        ) + (
            FaultDecl(kind=FaultKind.DMA_TORN, target="s0.chan.*",
                      every_nth=400),
        ) + tuple(
            # the chaos leg of the study: most of s0's NIC cores fail
            # early, so every tenant is squeezed onto a sliver of the
            # NIC and the share split actually decides who gets served
            FaultDecl(kind=FaultKind.CORE_FAIL, target=str(core),
                      node="s0", at_us=(core_fail_at_us,))
            for core in range(alive_cores, 12)
        ),
        observability=ObsSpec(
            trace=trace,
            recovery_restart_delay_us=100.0,
            pulse=PulseSpec(period_us=period_us)))


def run_tenant_chaos(isolation: bool, aggressor: bool = True,
                     seed: int = 42, duration_us: float = 40_000.0,
                     n_requests: int = 60, send_gap_us: float = 400.0,
                     aggressor_start_us: float = 4_000.0,
                     aggressor_stop_us: float = 36_000.0,
                     aggressor_gap_us: float = 1.5,
                     loss: float = 0.0, alive_cores: int = 2,
                     trace: bool = False) -> ChaosReport:
    """One leg of the study: victim + batch traffic, optionally the
    aggressor flood, with or without tenant shares."""
    spec = tenant_spec(isolation, seed=seed, duration_us=duration_us,
                       loss=loss, alive_cores=alive_cores, trace=trace)
    sim = Simulator()
    if getattr(sim, "checker", None) is None:
        # outside a SanitizerSession: attach our own (non-strict, so the
        # report carries violations instead of aborting mid-run)
        CheckPlane(sim, strict=False)
    bed = build(spec, sim=sim)
    tplane = bed.trace_plane
    plane = bed.fault_plane
    pulse = bed.pulse_plane
    victim = ChaosClient(bed.sim, bed.network, name="victim0",
                         timeout_us=2_500.0, port=bed.clients["victim0"])
    batch = ChaosClient(bed.sim, bed.network, name="batch0",
                        timeout_us=3_000.0, port=bed.clients["batch0"])
    value = bytes(64)

    def victim_driver():
        for i in range(n_requests):
            key = f"k{i % 7}"
            if i % 3 == 2:
                victim.request("s0", "rkv-get", {"key": key}, size=96)
            else:
                victim.request("s0", "rkv-put",
                               {"key": key, "value": value}, size=192)
            yield Timeout(send_gap_us)

    def batch_driver():
        # a light transactional trickle: the mixed-tenant background
        for i in range(max(n_requests // 6, 1)):
            batch.request("s0", "dt-txn", {
                "reads": [f"x{i % 4}"],
                "writes": {f"y{i % 4}": f"v{i}".encode()},
            }, size=160)
            yield Timeout(send_gap_us * 6)

    def aggressor_driver():
        # fire-and-forget analytics tuples straight at the shared
        # server: without shares the RTA pipeline's downgraded actors
        # soak up every DRR grant the victim needs
        yield Timeout(aggressor_start_us)
        i = 0
        while bed.sim.now < aggressor_stop_us:
            pkt = Packet("aggr0", "s0", 256, kind="rta-tuple",
                         payload={"tuples": [f"#tag{i % 5} flood {i}"]},
                         created_at=bed.sim.now)
            bed.network.send(pkt)
            i += 1
            yield Timeout(aggressor_gap_us)

    spawn(bed.sim, victim_driver(), name="tenant-victim")
    spawn(bed.sim, batch_driver(), name="tenant-batch")
    if aggressor:
        spawn(bed.sim, aggressor_driver(), name="tenant-aggressor")
    _run_until_answered(bed, victim, duration_us)

    injected, schedule, recovery = _collect(bed, plane)
    checker = getattr(bed.sim, "checker", None)
    tenancy_violations = [v for v in checker.violations
                          if v.monitor == "tenancy"] if checker else []
    runtime = bed.servers["s0"].runtime
    sched = runtime.nic_scheduler
    tenant_busy = {t: round(us, 3)
                   for t, us in sorted(sched.tenant_busy_us.items())}
    report = ChaosReport(
        workload="tenant", seed=seed, requests=n_requests,
        answered=victim.answered, lost=victim.lost,
        client_retransmits=victim.retransmits,
        duplicate_replies=victim.duplicate_replies,
        duration_us=bed.sim.now,
        faults_injected=injected, fault_schedule=schedule,
        recovery=recovery,
        invariants={
            "zero_loss": victim.lost == 0,
            "batch_answered": batch.answered > 0,
            "tenants_tagged": all(
                a.tenant for a in runtime.actors),
            "no_cross_tenant_dmo": runtime.dmo.cross_tenant_denials == 0,
            "tenant_invariants": not tenancy_violations,
        },
        pulse=pulse.telemetry(),
        stage_latencies=_finish_trace(tplane),
        trace_plane=tplane,
        pulse_plane=pulse,
    )
    # study-specific riders (folded into the record by tenant_point)
    report.pulse["victim_p99_us"] = round(_p99(victim.latencies), 6)
    report.pulse["tenant_busy_us"] = tuple(sorted(tenant_busy.items()))
    return report


def run_tenant_study(seed: int = 42, duration_us: float = 40_000.0,
                     n_requests: int = 60, send_gap_us: float = 400.0,
                     aggressor_stop_us: float = 36_000.0,
                     aggressor_gap_us: float = 1.5,
                     loss: float = 0.0, alive_cores: int = 2,
                     degradation_min: float = 2.0,
                     isolation_slack: float = 1.25,
                     trace: bool = False) -> Dict[str, object]:
    """The full three-leg comparison, as one plain record."""
    kwargs = dict(seed=seed, duration_us=duration_us,
                  n_requests=n_requests, send_gap_us=send_gap_us,
                  aggressor_stop_us=aggressor_stop_us,
                  aggressor_gap_us=aggressor_gap_us, loss=loss,
                  alive_cores=alive_cores, trace=trace)
    solo = run_tenant_chaos(isolation=False, aggressor=False, **kwargs)
    flat = run_tenant_chaos(isolation=False, aggressor=True, **kwargs)
    isolated = run_tenant_chaos(isolation=True, aggressor=True, **kwargs)

    solo_p99 = solo.pulse["victim_p99_us"]
    flat_p99 = flat.pulse["victim_p99_us"]
    iso_p99 = isolated.pulse["victim_p99_us"]
    checks = {
        "legs_ok": solo.ok and flat.ok and isolated.ok,
        "interference_shown": flat_p99 >= degradation_min * solo_p99,
        "isolation_holds": iso_p99 <= isolation_slack * solo_p99,
    }
    return {
        "workload": "tenant-study",
        "seed": seed,
        "victim_p99_solo_us": solo_p99,
        "victim_p99_flat_us": flat_p99,
        "victim_p99_isolated_us": iso_p99,
        "degradation_x": round(flat_p99 / solo_p99, 3) if solo_p99 else 0.0,
        "isolated_x": round(iso_p99 / solo_p99, 3) if solo_p99 else 0.0,
        "invariants": {**{f"solo_{k}": v
                          for k, v in solo.invariants.items()},
                       **{f"flat_{k}": v
                          for k, v in flat.invariants.items()},
                       **{f"isolated_{k}": v
                          for k, v in isolated.invariants.items()},
                       **checks},
        "ok": (solo.ok and flat.ok and isolated.ok
               and all(checks.values())),
        "fingerprint": (solo.telemetry_fingerprint(),
                        flat.telemetry_fingerprint(),
                        isolated.telemetry_fingerprint()),
    }


def tenant_point(**kwargs) -> Dict[str, object]:
    """Grid/CI entry point: the whole study as a plain record."""
    return run_tenant_study(**kwargs)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="TenantPlane study: noisy neighbor with and without "
                    "hierarchical DRR shares")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--duration", type=float, default=40_000.0,
                        metavar="US")
    parser.add_argument("--requests", type=int, default=60)
    args = parser.parse_args(argv)
    record = run_tenant_study(seed=args.seed, duration_us=args.duration,
                              n_requests=args.requests)
    print(f"[tenant-study] seed={record['seed']}")
    print(f"  victim p99: solo={record['victim_p99_solo_us']:.1f}us, "
          f"aggressor+flat={record['victim_p99_flat_us']:.1f}us "
          f"({record['degradation_x']:.2f}x), "
          f"aggressor+shares={record['victim_p99_isolated_us']:.1f}us "
          f"({record['isolated_x']:.2f}x)")
    print("  invariants: " + ", ".join(
        f"{name}={'ok' if good else 'VIOLATED'}"
        for name, good in record["invariants"].items()))
    return 0 if record["ok"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
