"""§5.6 and §5.7: Floem comparison and network functions on iPipe.

* **Floem vs iPipe (RTA)** — per-core throughput in Gbps/core, where
  cores counts every busy core (NIC + host) serving the pipeline.  iPipe
  wins the best case (~2.9 vs ~1.6 Gbps/core in the paper) because Floem's
  static placement pays a per-packet multiplexing queue; under 64B traffic
  iPipe wins by ~88% because it migrates the actors out of the NIC's way.
* **Firewall** — 8K wildcard rules; average processing latency rises from
  ~3.65µs to ~19.41µs as load grows (queueing on the NIC cores).
* **IPsec** — AES-256-CTR + SHA-1 via the crypto engines; goodput ~8.6
  Gbps on the 10GbE card (22.9 on 25GbE) for 1KB packets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..nic import LIQUIDIO_CN2350, LIQUIDIO_CN2360, NicSpec
from ..scenario import (
    AppSpec,
    ClientSpec,
    FabricSpec,
    RackSpec,
    ScenarioSpec,
    ServerSpec,
    build,
)
from ..sim import LatencyRecorder, Rng
from .applications import run_app


# -- §5.6 Floem comparison ---------------------------------------------------------

@dataclass
class FloemComparison:
    system: str
    packet_size: int
    throughput_gbps: float
    busy_cores: float

    @property
    def gbps_per_core(self) -> float:
        return self.throughput_gbps / max(self.busy_cores, 0.05)


def floem_vs_ipipe(packet_size: int = 1024, clients: int = 96,
                   duration_us: float = 15_000.0) -> Tuple[FloemComparison, FloemComparison]:
    """(floem, ipipe) per-core efficiency for the RTA workload."""
    out = []
    for system in ("floem", "ipipe"):
        result = run_app(system, "rta", nic_spec=LIQUIDIO_CN2350,
                         packet_size=packet_size, clients=clients,
                         duration_us=duration_us)
        gbps = result.throughput_mops * packet_size * 8 / 1000.0
        busy = sum(result.host_cores.values()) + sum(result.nic_cores.values())
        out.append(FloemComparison(system=system, packet_size=packet_size,
                                   throughput_gbps=gbps, busy_cores=busy))
    return out[0], out[1]


# -- §5.7 firewall ---------------------------------------------------------------------

def firewall_latency_vs_load(rule_count: int = 8192, packet_size: int = 1024,
                             loads: Tuple[float, ...] = (0.2, 0.5, 0.8, 0.95),
                             spec: NicSpec = LIQUIDIO_CN2350,
                             duration_us: float = 20_000.0,
                             seed: int = 31) -> List[Tuple[float, float]]:
    """[(load, mean processing latency µs)] for the 8K-rule firewall."""
    results = []
    for load in loads:
        bed = build(ScenarioSpec(
            name=f"firewall-{load}", seed=seed,
            racks=(RackSpec(
                name="rack0",
                servers=(ServerSpec(
                    name="fw", nic=spec, host_workers=4,
                    scheduler=(("migration_enabled", False),)),),
                clients=(ClientSpec("client"),)),),
            fabric=FabricSpec(bandwidth_gbps=spec.bandwidth_gbps),
            apps=(AppSpec(kind="firewall", servers=("fw",),
                          options=(("rule_count", rule_count),
                                   ("rule_seed", seed))),)))
        server = bed.servers["fw"]
        rng = Rng(seed + 1)

        def payload(_i, rng=rng):
            return {"src_ip": rng.randint(0, (1 << 32) - 1),
                    "dst_ip": rng.randint(0, (1 << 32) - 1),
                    "src_port": rng.randint(0, 65535),
                    "dst_port": rng.randint(0, 65535),
                    "proto": 6}

        # networking load is relative to line rate for this packet size
        from ..net import line_rate_pps
        rate = load * line_rate_pps(spec.bandwidth_gbps, packet_size) / 1e6
        recorder = LatencyRecorder()
        client = bed.clients["client"]

        def on_reply(packet, recorder=recorder, bed=bed):
            recorder.record(bed.sim.now - packet.created_at)

        client.add_sink(on_reply)
        gen = client.open_loop(dst="fw", rate_mpps=rate, size=packet_size,
                               payload_factory=payload, rng=Rng(seed + 2))
        bed.sim.run(until=duration_us)
        gen.stop()
        server.runtime.stop()
        warm = recorder.samples[len(recorder.samples) // 5:]
        mean = sum(warm) / len(warm) if warm else 0.0
        # subtract the fixed wire round trip to isolate processing latency
        wire = 2 * (0.3 + 0.45 + 0.3) + packet_size * 8 / (spec.bandwidth_gbps * 1e3)
        results.append((load, max(mean - wire, 0.0)))
    return results


# -- §5.7 IPsec -------------------------------------------------------------------------

def ipsec_goodput_gbps(spec: NicSpec = LIQUIDIO_CN2350,
                       packet_size: int = 1024, clients: int = 128,
                       duration_us: float = 15_000.0,
                       seed: int = 41) -> float:
    """Achieved IPsec encapsulation goodput for 1KB packets."""
    bed = build(ScenarioSpec(
        name="ipsec-gw", seed=seed,
        racks=(RackSpec(
            name="rack0",
            servers=(ServerSpec(
                name="gw", nic=spec, host_workers=4,
                scheduler=(("migration_enabled", False),)),),
            clients=(ClientSpec("gwclient"),)),),
        fabric=FabricSpec(bandwidth_gbps=spec.bandwidth_gbps),
        apps=(AppSpec(kind="ipsec", servers=("gw",)),)))
    server = bed.servers["gw"]
    client = bed.clients["gwclient"]
    payload_data = bytes(packet_size - 64)
    gen = client.closed_loop(dst="gw", clients=clients, size=packet_size,
                             payload_factory=lambda i: {"data": payload_data},
                             rng=Rng(seed))
    runtime = server.runtime
    bed.sim.run(until=duration_us)
    gen.stop()
    runtime.stop()
    return gen.completed * packet_size * 8 / duration_us / 1000.0
