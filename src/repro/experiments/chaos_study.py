"""Chaos study: the paper's workloads under a deterministic FaultPlane.

Runs the three distributed applications (§4) on the simulated testbed
while the FaultPlane injects link loss, torn DMA writes, core failures
and actor crashes — then asserts the invariants that separate a demo
dataplane from a deployable one:

* **zero client-visible request loss** — every request is eventually
  answered, via channel retransmission, actor restart, or client-level
  retry (the recovery stack working end to end);
* **Paxos safety** — no two RKV replicas commit different values for the
  same log instance, no matter what the fabric dropped;
* **OCC write provenance** — no DT participant exposes a value that was
  never committed (aborted writes leave no trace);
* **deterministic replay** — the same fault seed reproduces the same
  fault schedule and the same recovery telemetry, byte for byte.

Usage::

    PYTHONPATH=src python -m repro.experiments.chaos_study \
        --workload rkv --seed 42 --loss 0.02

Each ``run_*_chaos`` function returns a :class:`ChaosReport`; see
``docs/FAULTS.md`` for the fault model.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..apps.dt import DtCoordinatorNode, DtParticipantNode
from ..apps.rkv import RkvNode
from ..core import Message, recovery_snapshot
from ..net import Packet
from ..obs import TracePlane
from ..scenario import (
    AppSpec,
    ClientSpec,
    FaultDecl,
    ObsSpec,
    RackSpec,
    ScenarioSpec,
    ServerSpec,
    build,
)
from ..sim import FaultKind, FaultPlane, Timeout, spawn

#: extra drain time granted after the nominal run when requests are
#: still outstanding (recovery in progress)
DRAIN_CHUNK_US = 20_000.0
MAX_DRAIN_CHUNKS = 6


class ChaosClient:
    """Request generator with timeout-based retry and loss accounting.

    Every request carries a ``chaos_id`` in the packet metadata; replies
    (which copy request metadata) are matched on it, so retransmitted
    requests and duplicate replies are tracked exactly.  A request is
    *lost* only if it stays unanswered through every retry — the metric
    the zero-loss acceptance criterion is defined over.
    """

    def __init__(self, sim, network, name: str = "client",
                 timeout_us: float = 2_000.0, max_attempts: int = 20,
                 port=None):
        self.sim = sim
        self.network = network
        self.name = name
        self.timeout_us = timeout_us
        self.max_attempts = max_attempts
        if port is not None:
            # scenario-built client: the ClientPort owns the downlink;
            # untagged replies (ours) fall through to its sinks
            port.add_sink(self._receive)
        else:
            network.attach(name, self._receive)
        self.outstanding: Dict[int, Dict] = {}
        self.replies: Dict[int, Packet] = {}
        self.latencies: List[float] = []
        self.retransmits = 0
        self.duplicate_replies = 0
        self._next_rid = 0

    def request(self, dst: str, kind: str, payload, size: int = 128) -> int:
        rid = self._next_rid
        self._next_rid += 1
        self.outstanding[rid] = {
            "dst": dst, "kind": kind, "payload": payload, "size": size,
            "attempts": 0, "first_sent": self.sim.now,
        }
        self._transmit(rid)
        return rid

    def _transmit(self, rid: int) -> None:
        state = self.outstanding.get(rid)
        if state is None:
            return
        state["attempts"] += 1
        if state["attempts"] > 1:
            self.retransmits += 1
        pkt = Packet(self.name, state["dst"], state["size"],
                     kind=state["kind"], payload=state["payload"],
                     created_at=self.sim.now)
        pkt.meta["chaos_id"] = rid
        self.decorate(pkt, rid)
        self.network.send(pkt)
        if state["attempts"] < self.max_attempts:
            # exponential timeout scaling, capped: late recoveries (actor
            # restarts) take longer than a lost frame
            backoff = self.timeout_us * min(2 ** (state["attempts"] - 1), 8)
            self.sim.call_in(backoff, self._check, rid, state["attempts"])

    def decorate(self, pkt: Packet, rid: int) -> None:
        """Hook for subclasses to stamp extra metadata on every
        (re)transmission — e.g. steering keys and request uids."""

    def _check(self, rid: int, attempt: int) -> None:
        state = self.outstanding.get(rid)
        if state is None or state["attempts"] != attempt:
            return
        self._transmit(rid)

    def _receive(self, pkt: Packet) -> None:
        rid = pkt.meta.get("chaos_id")
        if rid is None:
            return
        state = self.outstanding.pop(rid, None)
        if state is None:
            self.duplicate_replies += 1
            return
        self.replies[rid] = pkt
        latency = self.sim.now - state["first_sent"]
        self.latencies.append(latency)
        # feed the PulsePlane's per-service SLO histograms: replies copy
        # request metadata, so steered traffic carries its service name
        service = pkt.meta.get("steer_service")
        metrics = getattr(self.sim, "metrics", None)
        if service is not None and metrics is not None:
            metrics.observe(f"svc.{service}.latency_us", latency,
                            now=self.sim.now)

    @property
    def answered(self) -> int:
        return len(self.replies)

    @property
    def lost(self) -> int:
        return len(self.outstanding)


@dataclass
class ChaosReport:
    """Outcome of one chaos scenario."""

    workload: str
    seed: int
    requests: int
    answered: int
    lost: int
    client_retransmits: int
    duplicate_replies: int
    duration_us: float
    faults_injected: Dict[str, int] = field(default_factory=dict)
    fault_schedule: List[Tuple[float, str, str]] = field(default_factory=list)
    recovery: Dict[str, object] = field(default_factory=dict)  # per node
    invariants: Dict[str, bool] = field(default_factory=dict)
    #: per-stage latency table from the TracePlane ({stage: {p50_us, ...}});
    #: empty when the scenario ran untraced
    stage_latencies: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: SteerPlane telemetry (epochs, forwards, suppressions, moves);
    #: empty unless the scenario ran with fabric steering
    steering: Dict[str, object] = field(default_factory=dict)
    #: PulsePlane telemetry (sample counts, series CRC, SLO transitions,
    #: load-driven migrations); empty unless the scenario ran a pulse
    pulse: Dict[str, object] = field(default_factory=dict)
    #: the TracePlane itself, for Chrome-trace export (not part of the
    #: replay fingerprint)
    trace_plane: Optional[TracePlane] = field(default=None, repr=False,
                                              compare=False)
    #: the PulsePlane itself, for SLO reports and CSV/Perfetto export
    #: (the fingerprint uses only the plain-data ``pulse`` digest)
    pulse_plane: Optional[object] = field(default=None, repr=False,
                                          compare=False)

    @property
    def ok(self) -> bool:
        return self.lost == 0 and all(self.invariants.values())

    def telemetry_fingerprint(self) -> Tuple:
        """Deterministic-replay digest: fault schedule + recovery
        telemetry.  Two runs with the same seed must produce equal
        fingerprints."""
        per_node = []
        for node in sorted(self.recovery):
            snap = self.recovery[node]
            per_node.append((
                node, snap.retransmits, snap.ring_full_backoffs, snap.nacks,
                snap.messages_recovered, snap.crashes, snap.restarts,
                snap.core_failures, snap.core_stalls,
                round(snap.mttr_mean_us, 6), round(snap.mttr_max_us, 6),
            ))
        base = (tuple(self.fault_schedule), tuple(per_node),
                self.answered, self.client_retransmits)
        if self.steering:
            base = base + (tuple(sorted(self.steering.items())),)
        if self.pulse:
            base = base + (tuple(sorted(self.pulse.items())),)
        return base

    def to_record(self) -> Dict[str, object]:
        """The plain-data grid/CI record (picklable, fingerprint last).

        The one assembly point shared by every study's point function
        (``grids.chaos_point``, ``steering_study.rebalance_point``,
        ``slo_study.slo_point``), so telemetry riders — steering, pulse —
        fold into every record and every fingerprint in one place.
        """
        record: Dict[str, object] = {
            "workload": self.workload,
            "seed": self.seed,
            "requests": self.requests,
            "answered": self.answered,
            "lost": self.lost,
            "client_retransmits": self.client_retransmits,
            "duplicate_replies": self.duplicate_replies,
            "duration_us": self.duration_us,
            "faults_injected": dict(self.faults_injected),
            "invariants": dict(self.invariants),
            "ok": self.ok,
            "stage_latencies": dict(self.stage_latencies),
        }
        if self.steering:
            record["steering"] = dict(self.steering)
        if self.pulse:
            record["pulse"] = dict(self.pulse)
        record["fingerprint"] = self.telemetry_fingerprint()
        return record

    def summary(self) -> str:
        mttrs = [s.mttr_mean_us for s in self.recovery.values()
                 if s.mttr_mean_us > 0]
        retrans = sum(s.retransmits for s in self.recovery.values())
        restarts = sum(s.restarts for s in self.recovery.values())
        lines = [
            f"[chaos:{self.workload}] seed={self.seed} "
            f"{self.answered}/{self.requests} answered, lost={self.lost}, "
            f"client retries={self.client_retransmits}, "
            f"dup replies={self.duplicate_replies}",
            f"  faults injected: {self.faults_injected or 'none'} "
            f"({len(self.fault_schedule)} scheduled events)",
            f"  recovery: {retrans} channel retransmits, "
            f"{restarts} actor restarts, "
            f"MTTR mean={sum(mttrs) / len(mttrs):.1f}us" if mttrs else
            f"  recovery: {retrans} channel retransmits, "
            f"{restarts} actor restarts",
            f"  invariants: " + ", ".join(
                f"{name}={'ok' if good else 'VIOLATED'}"
                for name, good in self.invariants.items()),
        ]
        for stage, st in self.stage_latencies.items():
            lines.append(
                f"  stage {stage:14s} n={st['count']:<7d} "
                f"p50={st['p50_us']:8.2f}µs p99={st['p99_us']:8.2f}µs")
        return "\n".join(lines)


def _run_until_answered(scenario, client: ChaosClient,
                        duration_us: float) -> None:
    scenario.sim.run(until=duration_us)
    chunks = 0
    while client.lost and chunks < MAX_DRAIN_CHUNKS:
        scenario.sim.run(until=scenario.sim.now + DRAIN_CHUNK_US)
        chunks += 1


def _collect(scenario, plane: FaultPlane) -> Tuple[Dict, List, Dict]:
    recovery = {name: recovery_snapshot(server.runtime)
                for name, server in sorted(scenario.servers.items())}
    return dict(plane.counts), list(plane.schedule_log), recovery


def _chaos_servers(names, host_workers: int = 2) -> Tuple[ServerSpec, ...]:
    """Chaos deployments pin migration off and run reliable channels."""
    return tuple(
        ServerSpec(name=n, host_workers=host_workers, reliable=True,
                   scheduler=(("migration_enabled", False),))
        for n in names)


def _finish_trace(tplane: Optional[TracePlane]) -> Dict[str, Dict[str, float]]:
    """Flush open spans and return the per-stage p50/p99 table."""
    if tplane is None or tplane.tracer is None:
        return {}
    tplane.tracer.close_all()
    return tplane.stage_report()


# -- RKV ----------------------------------------------------------------------
def paxos_safety_ok(rkv_nodes: Dict[str, RkvNode]) -> bool:
    """No two replicas may commit different values for one instance."""
    committed: Dict[int, object] = {}
    for node in rkv_nodes.values():
        for instance, entry in node.paxos.log.items():
            if not entry.committed:
                continue
            if instance in committed and committed[instance] != entry.value:
                return False
            committed.setdefault(instance, entry.value)
    return True


def run_rkv_chaos(seed: int = 42, loss: float = 0.02,
                  torn_every_nth: int = 3, n_requests: int = 45,
                  crash_memtable: bool = True,
                  duration_us: float = 60_000.0,
                  value_bytes: int = 64,
                  send_gap_us: float = 200.0,
                  trace: bool = False) -> ChaosReport:
    """Replicated KV store under link loss + torn DMA + an actor crash.

    The acceptance scenario: ≥1% link loss and periodic torn writes on
    the leader's NIC→host ring, with reliable channels and actor restart
    enabled — and still zero client-visible request loss.
    """
    nodes = ("s0", "s1", "s2")
    faults = [
        FaultDecl(kind=FaultKind.LINK_LOSS, target="*", probability=loss),
        FaultDecl(kind=FaultKind.DMA_TORN, target="s0.chan.*",
                  every_nth=torn_every_nth),
    ]
    if crash_memtable:
        faults.append(FaultDecl(kind=FaultKind.ACTOR_CRASH,
                                target="memtable", node="s0",
                                at_us=(duration_us * 0.25,)))
    spec = ScenarioSpec(
        name="chaos-rkv", seed=seed, duration_us=duration_us,
        racks=(RackSpec(name="rack0", servers=_chaos_servers(nodes),
                        clients=(ClientSpec("client"),)),),
        apps=(AppSpec(kind="rkv", servers=nodes, leader="s0",
                      options=(("memtable_limit", 256 * 1024),)),),
        faults=tuple(faults),
        observability=ObsSpec(trace=trace,
                              recovery_restart_delay_us=100.0))
    bed = build(spec)
    tplane = bed.trace_plane
    plane = bed.fault_plane
    rkv: Dict[str, RkvNode] = bed.app("rkv").nodes
    client = ChaosClient(bed.sim, bed.network,
                         port=bed.clients["client"])

    value = bytes(value_bytes)

    def driver():
        for i in range(n_requests):
            if i % 6 == 5:
                # memtable miss: crosses the host↔NIC rings (sst_read),
                # so torn DMA writes actually hit the request path
                client.request("s0", "rkv-get",
                               {"key": f"cold{i}"}, size=96)
            elif i % 3 == 2:
                client.request("s0", "rkv-get",
                               {"key": f"k{(i - 1) % 17}"}, size=96)
            else:
                client.request("s0", "rkv-put",
                               {"key": f"k{i % 17}", "value": value},
                               size=128 + value_bytes)
            yield Timeout(send_gap_us)

    def paxos_repair():
        # periodic liveness tick: lost ACCEPTs would otherwise strand an
        # instance below quorum and stall the apply loop forever
        while True:
            yield Timeout(1_000.0)
            for name in nodes:
                runtime = bed.server(name).runtime
                runtime.deliver(Message(
                    target="consensus", kind="paxos-tick", payload=None,
                    size=32, created_at=bed.sim.now))

    spawn(bed.sim, driver(), name="chaos-driver")
    spawn(bed.sim, paxos_repair(), name="paxos-repair")
    _run_until_answered(bed, client, duration_us)

    injected, schedule, recovery = _collect(bed, plane)
    return ChaosReport(
        workload="rkv", seed=seed, requests=n_requests,
        answered=client.answered, lost=client.lost,
        client_retransmits=client.retransmits,
        duplicate_replies=client.duplicate_replies,
        duration_us=bed.sim.now,
        faults_injected=injected, fault_schedule=schedule,
        recovery=recovery,
        invariants={
            "zero_loss": client.lost == 0,
            "paxos_safety": paxos_safety_ok(rkv),
        },
        stage_latencies=_finish_trace(tplane),
        trace_plane=tplane,
    )


# -- DT -----------------------------------------------------------------------
def occ_provenance_ok(coordinator: DtCoordinatorNode,
                      participants: List[DtParticipantNode]) -> bool:
    """No participant may expose a value outside the committed history."""
    committed_values: Dict[str, set] = {}
    for record in coordinator.log.active.records:
        for key, val in record.writes.items():
            committed_values.setdefault(key, set()).add(val)
    for part in participants:
        # phantom check: any value a participant exposes must come from a
        # committed record.  version == 0 entries are lock placeholders
        # (try_lock on an absent key) — never-written, i.e. "absent", the
        # same as a commit message lost on the wire (stale-by-absence).
        for bucket in part.participant.store._buckets:
            for entry in bucket:
                if entry.value is None or entry.version == 0:
                    continue
                if entry.value not in committed_values.get(entry.key, set()):
                    return False
    return True


def run_dt_chaos(seed: int = 42, loss: float = 0.005,
                 torn_every_nth: int = 9, n_txns: int = 30,
                 duration_us: float = 60_000.0,
                 send_gap_us: float = 300.0,
                 trace: bool = False) -> ChaosReport:
    """Distributed transactions under loss: every txn must be answered
    (committed or aborted) and no aborted write may leak into a store."""
    spec = ScenarioSpec(
        name="chaos-dt", seed=seed, duration_us=duration_us,
        racks=(RackSpec(name="rack0",
                        servers=_chaos_servers(("s0", "s1", "s2")),
                        clients=(ClientSpec("client"),)),),
        apps=(AppSpec(kind="dt", servers=("s0", "s1", "s2"),
                      options=(("log_segment_bytes", 1 << 20),)),),
        faults=(
            FaultDecl(kind=FaultKind.LINK_LOSS, target="*",
                      probability=loss),
            FaultDecl(kind=FaultKind.DMA_TORN, target="s0.chan.*",
                      every_nth=torn_every_nth),
        ),
        observability=ObsSpec(trace=trace,
                              recovery_restart_delay_us=100.0))
    bed = build(spec)
    tplane = bed.trace_plane
    plane = bed.fault_plane
    app = bed.app("dt")
    coordinator = app.nodes["s0"]
    participants = [app.nodes["s1"], app.nodes["s2"]]
    client = ChaosClient(bed.sim, bed.network, timeout_us=3_000.0,
                         port=bed.clients["client"])

    def driver():
        for i in range(n_txns):
            key_a, key_b = f"x{i % 8}", f"y{i % 8}"
            client.request("s0", "dt-txn", {
                "reads": [key_a],
                "writes": {key_b: f"v{i}".encode()},
            }, size=160)
            yield Timeout(send_gap_us)

    spawn(bed.sim, driver(), name="chaos-driver")
    _run_until_answered(bed, client, duration_us)

    injected, schedule, recovery = _collect(bed, plane)
    return ChaosReport(
        workload="dt", seed=seed, requests=n_txns,
        answered=client.answered, lost=client.lost,
        client_retransmits=client.retransmits,
        duplicate_replies=client.duplicate_replies,
        duration_us=bed.sim.now,
        faults_injected=injected, fault_schedule=schedule,
        recovery=recovery,
        invariants={
            "zero_loss": client.lost == 0,
            "occ_provenance": occ_provenance_ok(coordinator, participants),
        },
        stage_latencies=_finish_trace(tplane),
        trace_plane=tplane,
    )


# -- RTA ----------------------------------------------------------------------
def run_rta_chaos(seed: int = 42, loss: float = 0.01,
                  n_requests: int = 40, duration_us: float = 60_000.0,
                  send_gap_us: float = 250.0,
                  trace: bool = False) -> ChaosReport:
    """Analytics pipeline surviving a NIC core failure, a core stall and
    a crash of the stateful counter actor."""
    spec = ScenarioSpec(
        name="chaos-rta", seed=seed, duration_us=duration_us,
        racks=(RackSpec(name="rack0", servers=_chaos_servers(("s0",)),
                        clients=(ClientSpec("client"),)),),
        apps=(AppSpec(kind="rta", servers=("s0",)),),
        faults=(
            FaultDecl(kind=FaultKind.LINK_LOSS, target="*",
                      probability=loss),
            FaultDecl(kind=FaultKind.CORE_FAIL, target="3", node="s0",
                      at_us=(duration_us * 0.2,)),
            FaultDecl(kind=FaultKind.CORE_STALL, target="1", node="s0",
                      at_us=(duration_us * 0.3,), duration_us=2_000.0),
            FaultDecl(kind=FaultKind.ACTOR_CRASH, target="counter",
                      node="s0", at_us=(duration_us * 0.4,)),
            FaultDecl(kind=FaultKind.RING_STALL,
                      target="s0.chan.to_host",
                      at_us=(duration_us * 0.5,), duration_us=1_000.0),
        ),
        observability=ObsSpec(trace=trace,
                              recovery_restart_delay_us=100.0))
    bed = build(spec)
    tplane = bed.trace_plane
    plane = bed.fault_plane
    server = bed.servers["s0"]
    worker = bed.app("rta").nodes["s0"]
    client = ChaosClient(bed.sim, bed.network,
                         port=bed.clients["client"])

    def driver():
        for i in range(n_requests):
            tuples = ([f"#tag{i} trending now"] if i % 2 == 0
                      else [f"plain tuple {i}"])
            client.request("s0", "rta-tuple", {"tuples": tuples}, size=128)
            yield Timeout(send_gap_us)

    spawn(bed.sim, driver(), name="chaos-driver")
    _run_until_answered(bed, client, duration_us)

    injected, schedule, recovery = _collect(bed, plane)
    sched = server.runtime.nic_scheduler
    return ChaosReport(
        workload="rta", seed=seed, requests=n_requests,
        answered=client.answered, lost=client.lost,
        client_retransmits=client.retransmits,
        duplicate_replies=client.duplicate_replies,
        duration_us=bed.sim.now,
        faults_injected=injected, fault_schedule=schedule,
        recovery=recovery,
        invariants={
            "zero_loss": client.lost == 0,
            "core_rebalanced": (sched.core_health.alive_count()
                                == sched.num_cores - 1
                                and sched.fcfs_cores() >= 1),
            "tuples_processed": worker.tuples_in > 0,
        },
        stage_latencies=_finish_trace(tplane),
        trace_plane=tplane,
    )


RUNNERS = {
    "rkv": run_rkv_chaos,
    "dt": run_dt_chaos,
    "rta": run_rta_chaos,
}


def chaos_sweep(workloads: Tuple[str, ...] = ("rkv", "dt", "rta"),
                seeds: Tuple[int, ...] = (42,),
                executor=None,
                **kwargs) -> Dict[Tuple[str, int], Dict]:
    """Chaos scenarios across seeds, optionally through a ParallelSweep.

    Returns ``(workload, seed) → chaos_point dict`` (plain data with the
    deterministic-replay fingerprint; see
    :func:`repro.exec.grids.chaos_point`), merged in sorted key order.
    """
    from ..exec.grids import chaos_point
    from ..exec.sweep import ParallelSweep, SweepPoint
    points = [
        SweepPoint((workload, seed), chaos_point,
                   dict(workload=workload, seed=seed, **kwargs))
        for workload in workloads for seed in seeds
    ]
    if executor is None:
        executor = ParallelSweep(jobs=1)
    return dict(executor.run(points).results)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workload", choices=[*RUNNERS, "all"],
                        default="all")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--loss", type=float, default=None,
                        help="link loss probability override")
    parser.add_argument("--duration-ms", type=float, default=None,
                        help="nominal run length override (milliseconds)")
    parser.add_argument("--trace", action="store_true",
                        help="run with a TracePlane and report per-stage "
                             "p50/p99 latency breakdowns")
    parser.add_argument("--trace-out", default=None, metavar="PATH",
                        help="write Chrome trace_event JSON (implies "
                             "--trace; with multiple workloads the name "
                             "gets a per-workload suffix)")
    args = parser.parse_args(argv)

    names = list(RUNNERS) if args.workload == "all" else [args.workload]
    failed = 0
    for name in names:
        kwargs = {"seed": args.seed}
        if args.loss is not None:
            kwargs["loss"] = args.loss
        if args.duration_ms is not None:
            kwargs["duration_us"] = args.duration_ms * 1_000.0
        if args.trace or args.trace_out:
            kwargs["trace"] = True
        report = RUNNERS[name](**kwargs)
        print(report.summary())
        if args.trace_out and report.trace_plane is not None:
            path = args.trace_out
            if len(names) > 1:
                stem, dot, ext = path.rpartition(".")
                path = f"{stem}-{name}{dot}{ext}" if dot else f"{path}-{name}"
            events = report.trace_plane.export_chrome(path)
            print(f"  trace: {events} events -> {path}")
        if not report.ok:
            failed += 1
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
