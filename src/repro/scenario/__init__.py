"""Declarative scenario layer: describe a deployment, build a simulation.

A :class:`ScenarioSpec` is a pure-data description of racks, servers
(with per-server NIC models and runtime systems), the switching fabric,
client fleets, application placement, workloads, fault schedules and
observability.  :func:`build` turns one into a wired, runnable
:class:`Scenario`; :func:`run_scenario` builds *and* drives it to the
spec's horizon and reports fleet/fabric counters.

Specs load from Python, JSON, or TOML (Python ≥ 3.11) and ship with the
package under ``scenario/specs/``.
"""

from .spec import (
    AppSpec,
    ClientSpec,
    FabricSpec,
    FaultDecl,
    FleetSpec,
    NIC_CATALOG,
    ObsSpec,
    PulseSpec,
    RackSpec,
    RebalanceSpec,
    ScenarioError,
    ScenarioSpec,
    ServerSpec,
    SLOSpec,
    SteeringSpec,
    TenantSpec,
    from_dict,
    from_file,
    from_json,
    resolve_nic,
    single_rack,
    three_servers,
    to_dict,
    to_json,
)
from .build import (
    BuiltApp,
    ClientPort,
    Scenario,
    Server,
    build,
    make_fabric,
    make_server,
)
from .run import (
    ScenarioResult,
    load_shipped,
    run_scenario,
    shipped_specs,
)

__all__ = [
    "AppSpec",
    "BuiltApp",
    "ClientPort",
    "ClientSpec",
    "FabricSpec",
    "FaultDecl",
    "FleetSpec",
    "NIC_CATALOG",
    "ObsSpec",
    "PulseSpec",
    "RackSpec",
    "RebalanceSpec",
    "Scenario",
    "ScenarioError",
    "ScenarioResult",
    "ScenarioSpec",
    "Server",
    "ServerSpec",
    "SLOSpec",
    "SteeringSpec",
    "TenantSpec",
    "build",
    "from_dict",
    "from_file",
    "from_json",
    "load_shipped",
    "make_fabric",
    "make_server",
    "resolve_nic",
    "run_scenario",
    "shipped_specs",
    "single_rack",
    "three_servers",
    "to_dict",
    "to_json",
]
