"""Declarative scenario specs: racks, servers, fabric, apps, workloads.

A :class:`ScenarioSpec` is a plain dataclass tree describing one whole
simulated deployment — the multi-rack fabric, per-server NIC models and
host resources, application placement (sharded/replicated across racks),
client fleets, fault schedules, and observability — with nothing
imperative in it.  Specs can be written in Python, loaded from JSON (or
TOML where the interpreter ships ``tomllib``), canonicalised for the
sweep result cache, and handed to :func:`repro.scenario.build` to
assemble the simulation.

The design goal (ROADMAP: "as many scenarios as you can imagine") is
that a new deployment — say, three racks of sharded RKV with cross-rack
Paxos and an open-loop fleet standing in for a million client
connections — is ~30 lines of data, not a new experiment module.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..nic import (
    BLUEFIELD_1M332A,
    LIQUIDIO_CN2350,
    LIQUIDIO_CN2360,
    NicSpec,
    STINGRAY_PS225,
)
from ..sim.faults import ALL_KINDS, EVENT_KINDS

SPEC_VERSION = 1

#: Every simulated NIC model, addressable by model string or short alias.
NIC_CATALOG: Dict[str, NicSpec] = {}
for _spec in (LIQUIDIO_CN2350, LIQUIDIO_CN2360, BLUEFIELD_1M332A,
              STINGRAY_PS225):
    NIC_CATALOG[_spec.model] = _spec
NIC_CATALOG.update({
    "cn2350": LIQUIDIO_CN2350,
    "cn2360": LIQUIDIO_CN2360,
    "bluefield": BLUEFIELD_1M332A,
    "stingray": STINGRAY_PS225,
})

SYSTEMS = ("ipipe", "ipipe-hostonly", "dpdk", "floem")
APP_KINDS = ("rkv", "dt", "rta", "firewall", "ipsec", "none")
WORKLOAD_KINDS = ("kv", "txn", "twitter", "none")
FLEET_MODES = ("closed", "open")


class ScenarioError(ValueError):
    """A spec failed validation; ``problems`` lists every finding."""

    def __init__(self, problems: Sequence[str]):
        self.problems = list(problems)
        super().__init__("; ".join(self.problems))


def resolve_nic(ref) -> NicSpec:
    """A NicSpec from a catalog name, alias, or an actual NicSpec."""
    if isinstance(ref, NicSpec):
        return ref
    try:
        return NIC_CATALOG[ref]
    except KeyError:
        raise ScenarioError(
            [f"unknown NIC {ref!r} (have {sorted(NIC_CATALOG)})"]) from None


# -- the spec tree ------------------------------------------------------------

@dataclass(frozen=True)
class ServerSpec:
    """One server box: NIC model, runtime system, host resources."""

    name: str
    nic: str = LIQUIDIO_CN2350.model
    system: str = "ipipe"          # ipipe | ipipe-hostonly | dpdk | floem
    host_workers: Optional[int] = None
    host_cores: Optional[int] = None
    reliable: bool = False
    #: SchedulerConfig field overrides (e.g. {"migration_enabled": False})
    scheduler: Tuple[Tuple[str, Any], ...] = ()

    def scheduler_kwargs(self) -> Dict[str, Any]:
        return dict(self.scheduler)


@dataclass(frozen=True)
class ClientSpec:
    """A client box with a dumb NIC running workload generators."""

    name: str


@dataclass(frozen=True)
class RackSpec:
    """One rack: a ToR subnet of servers and client boxes."""

    name: str
    servers: Tuple[ServerSpec, ...] = ()
    clients: Tuple[ClientSpec, ...] = ()


@dataclass(frozen=True)
class FabricSpec:
    """The wiring: port speeds, switch latencies, inter-rack runs."""

    bandwidth_gbps: float = 10.0
    propagation_us: float = 0.3
    tor_latency_us: float = 0.45
    spine_latency_us: float = 0.60
    uplink_gbps: Optional[float] = None
    inter_rack_propagation_us: float = 1.2


@dataclass(frozen=True)
class TenantSpec:
    """One tenant: fair-share budgets for the NIC resources its apps use.

    A spec with no ``tenants`` runs exactly as before — one implicit
    tenant owns the whole NIC and no tenant machinery activates (the
    event schedule is bit-identical to the pre-tenancy code).  Declaring
    tenants turns on hierarchical DRR (per-tenant quantum pools scaled
    by ``nic_core_share``, then per-actor deficit within the pool),
    per-tenant accelerator admission, per-tenant DMO byte budgets, and
    the TenantMonitor invariants (docs/TENANCY.md).
    """

    name: str
    nic_core_share: float = 0.0        # fraction of the DRR quantum pool
    accelerator_share: float = 0.0     # fraction of accelerator time
    dmo_budget_bytes: int = 0          # total DMO region bytes (0 = unlimited)
    slos: Tuple[str, ...] = ()         # compact SLO grammar strings


@dataclass(frozen=True)
class AppSpec:
    """Application placement over the fabric's servers.

    ``servers`` lists runtime names in placement order; with
    ``shards > 1`` the list is dealt round-robin into ``shards`` replica
    groups (so listing servers rack-by-rack interleaves every shard
    across racks — cross-rack replication by construction).  Each RKV
    replica group runs its own Paxos ring; ``dt`` takes the first server
    as coordinator; ``rta`` aggregates on the first server.

    ``tenant`` names the owning :class:`TenantSpec`; every actor the app
    registers inherits it.  Empty means the implicit single tenant.
    """

    kind: str                          # rkv | dt | rta | firewall | ipsec | none
    servers: Tuple[str, ...] = ()      # default: every server in the spec
    shards: int = 1
    leader: Optional[str] = None       # rkv: initial leader (per-group: first)
    options: Tuple[Tuple[str, Any], ...] = ()
    #: build-time device pins from a placement plan (:mod:`repro.plan`):
    #: ("server/actor", "nic" | "host") pairs applied before any traffic.
    placement: Tuple[Tuple[str, str], ...] = ()
    tenant: str = ""                   # owning tenant ("" = implicit)

    def option(self, key: str, default=None):
        return dict(self.options).get(key, default)

    def replica_groups(self, all_servers: Sequence[str]
                       ) -> List[List[str]]:
        """Deal the placement into per-shard replica groups."""
        servers = list(self.servers) or list(all_servers)
        if self.shards <= 1:
            return [servers]
        return [servers[i::self.shards] for i in range(self.shards)]


@dataclass(frozen=True)
class FleetSpec:
    """One client fleet: who sends what, to whom, and how hard.

    ``dst`` is a server name, or ``"shard:<app-kind>"`` to split the
    fleet across every shard leader of that app (keys route by hash).
    ``connections`` documents the real-world connection count the fleet
    stands in for (an open-loop rate models arbitrarily many remote
    connections without one simulated process each).
    """

    client: str
    dst: str
    mode: str = "closed"               # closed | open
    clients: int = 16                  # closed-loop concurrency per shard
    rate_mpps: float = 0.0             # open-loop aggregate rate
    size: int = 512
    workload: str = "kv"               # kv | txn | twitter | none
    seed: int = 5
    think_time_us: float = 0.0
    poisson: bool = True
    connections: int = 0
    #: open-loop arrival batching: draw and schedule all arrivals of a
    #: ``lattice_us``-wide window at once (absolute-time accumulation,
    #: same Rng draw order, bit-identical emission timestamps) instead
    #: of one re-arm event per packet.  0 disables batching.
    lattice_us: float = 0.0
    tenant: str = ""                   # owning tenant ("" = implicit)


@dataclass(frozen=True)
class FaultDecl:
    """Declarative fault-plane entry (mirrors ``repro.sim.FaultSpec``)."""

    kind: str
    target: str = "*"
    node: Optional[str] = None
    probability: float = 0.0
    every_nth: int = 0
    at_us: Tuple[float, ...] = ()
    period_us: float = 0.0
    start_us: float = 0.0
    stop_us: float = float("inf")
    duration_us: float = 0.0
    max_count: Optional[int] = None


@dataclass(frozen=True)
class SteeringSpec:
    """One steered service: a VIP consistently hashed over backends.

    Clients address ``svc:<service>``; the fabric switches resolve the
    VIP through an epoch-versioned Maglev table with per-connection
    affinity (see :mod:`repro.net.steering`).  ``backends`` defaults to
    the shard leaders of ``app``.
    """

    service: str
    app: Optional[str] = None          # app kind whose leaders back the VIP
    backends: Tuple[str, ...] = ()     # explicit backend servers
    table_size: int = 251
    window_us: float = 2_000.0         # forwarding window after a repoint


@dataclass(frozen=True)
class RebalanceSpec:
    """Policy reacting to rack outages — and, with ``on_load``, to
    sustained per-backend utilization skew measured by the PulsePlane."""

    service: str = ""                  # default: the first steering service
    notice_us: float = 1_000.0         # evacuate this long before an outage
    return_home: bool = True           # repatriate when the rack returns
    on_load: bool = False              # migrate on sustained load skew
    util_high: float = 0.75            # hot floor (mean NIC utilization)
    skew_min: float = 0.25             # hot server must beat fleet mean by
    sustain_periods: int = 3           # hysteresis: consecutive hot samples
    cooldown_us: float = 5_000.0       # min gap between load-driven moves


@dataclass(frozen=True)
class PulseSpec:
    """PulsePlane sampling: cadence, retention, default gauge sets."""

    period_us: float = 500.0           # sample lattice spacing
    retention: int = 4096              # ring-buffer points per series
    watch_servers: bool = True         # nic.util.* + nic.queue.* gauges
    watch_steering: bool = True        # steer.rate (when steering declared)


@dataclass(frozen=True)
class SLOSpec:
    """One latency SLO: ``<service> p<pct> < <threshold_us> over
    <window_us>``, evaluated per pulse with multi-window burn rates.

    ``service`` names the steered service (or app kind) whose
    ``svc.<service>.latency_us`` histogram the clients record.  In
    JSON/TOML an entry may also be the compact grammar string —
    ``"rkv p99 < 40us over 2ms"`` — parsed by
    :func:`repro.obs.slo.parse_slo`.
    """

    service: str
    threshold_us: float = 0.0          # objective bound (must be > 0)
    pct: float = 99.0                  # watched quantile
    window_us: float = 2_000.0         # fast evaluation window
    slow_windows: int = 4              # slow window, in fast windows
    budget: float = 0.1                # allowed over-threshold fraction
    burn_threshold: float = 1.0        # breach when both burns reach this
    name: str = ""                     # default: "<service>-p<pct>"

    def slo_name(self) -> str:
        return self.name or f"{self.service}-p{self.pct:g}"

    def metric(self) -> str:
        return f"svc.{self.service}.latency_us"

    @classmethod
    def from_text(cls, text: str) -> "SLOSpec":
        from ..obs.slo import parse_slo
        try:
            parsed = parse_slo(text)
        except ValueError as exc:
            raise ScenarioError([str(exc)]) from None
        return cls(service=parsed["service"], pct=parsed["pct"],
                   threshold_us=parsed["threshold_us"],
                   window_us=parsed["window_us"], name=parsed["name"])


@dataclass(frozen=True)
class ObsSpec:
    """Observability riders: TracePlane, recovery policy, PulsePlane."""

    trace: bool = False
    recovery_restart_delay_us: Optional[float] = None
    pulse: Optional[PulseSpec] = None
    slos: Tuple[SLOSpec, ...] = ()


EXEC_SHARDS = ("none", "by-rack")
FAULT_STREAM_MODES = ("auto", "shared", "per-component")


@dataclass(frozen=True)
class ExecSpec:
    """How to execute the built scenario.

    ``shards="by-rack"`` hands the spec to
    :class:`repro.exec.shard.RackShardExecutor`: each rack runs as its
    own :class:`~repro.sim.engine.Simulator`, exchanging timestamped
    cross-rack packets at the spine boundary under a conservative
    lookahead window equal to the fabric's inter-rack propagation delay.
    The result is bit-identical to the serial run (same fingerprint,
    same canonical event digest) — see docs/PERFORMANCE.md.

    ``processes`` > 0 runs that many shards as forked worker processes
    (0 = all shards in-process).  ``lookahead_us`` can only *tighten*
    the fabric-derived lookahead (useful for stress-testing the
    synchronization protocol; never needed for correctness).

    ``fault_streams`` picks how stochastic fault draws are keyed:
    ``"shared"`` is the classic one-stream-per-spec mode (pinned by
    golden schedules), ``"per-component"`` keys draws by component so
    schedules survive decomposition, ``"auto"`` resolves to
    per-component exactly when sharding is on.
    """

    shards: str = "none"               # none | by-rack
    processes: int = 0                 # 0 = in-process shards
    lookahead_us: Optional[float] = None
    fault_streams: str = "auto"        # auto | shared | per-component

    def resolved_fault_streams(self) -> str:
        if self.fault_streams != "auto":
            return self.fault_streams
        return "per-component" if self.shards != "none" else "shared"


@dataclass(frozen=True)
class ScenarioSpec:
    """The whole deployment, as data."""

    name: str
    racks: Tuple[RackSpec, ...]
    fabric: FabricSpec = FabricSpec()
    apps: Tuple[AppSpec, ...] = ()
    fleets: Tuple[FleetSpec, ...] = ()
    tenants: Tuple[TenantSpec, ...] = ()
    faults: Tuple[FaultDecl, ...] = ()
    steering: Tuple[SteeringSpec, ...] = ()
    rebalance: Optional[RebalanceSpec] = None
    observability: ObsSpec = ObsSpec()
    execution: ExecSpec = ExecSpec()
    seed: int = 42
    duration_us: float = 20_000.0
    description: str = ""
    version: int = SPEC_VERSION

    # -- introspection --------------------------------------------------------
    def server_specs(self) -> List[ServerSpec]:
        return [s for rack in self.racks for s in rack.servers]

    def server_names(self) -> List[str]:
        return [s.name for s in self.server_specs()]

    def client_names(self) -> List[str]:
        return [c.name for rack in self.racks for c in rack.clients]

    def rack_of(self, node: str) -> Optional[str]:
        for rack in self.racks:
            for s in rack.servers:
                if s.name == node:
                    return rack.name
            for c in rack.clients:
                if c.name == node:
                    return rack.name
        return None

    def is_multi_rack(self) -> bool:
        return len(self.racks) > 1

    def tenant_names(self) -> List[str]:
        return [t.name for t in self.tenants]

    def tenant_of(self, name: str) -> Optional[TenantSpec]:
        for tenant in self.tenants:
            if tenant.name == name:
                return tenant
        return None

    # -- validation -----------------------------------------------------------
    def validate(self) -> "ScenarioSpec":
        """Raise :class:`ScenarioError` listing every problem found."""
        problems: List[str] = []
        if not self.racks:
            problems.append("no racks")
        names = self.server_names() + self.client_names()
        dupes = {n for n in names if names.count(n) > 1}
        if dupes:
            problems.append(f"duplicate node names: {sorted(dupes)}")
        rack_names = [r.name for r in self.racks]
        if len(set(rack_names)) != len(rack_names):
            problems.append(f"duplicate rack names: {rack_names}")
        for server in self.server_specs():
            if server.system not in SYSTEMS:
                problems.append(f"{server.name}: unknown system "
                                f"{server.system!r} (have {SYSTEMS})")
            if not isinstance(server.nic, NicSpec) \
                    and server.nic not in NIC_CATALOG:
                problems.append(f"{server.name}: unknown NIC {server.nic!r}")
        known = set(self.server_names())
        clients = set(self.client_names())
        app_kinds = {a.kind for a in self.apps}
        for app in self.apps:
            if app.kind not in APP_KINDS:
                problems.append(f"app: unknown kind {app.kind!r} "
                                f"(have {APP_KINDS})")
            for server in app.servers:
                if server not in known:
                    problems.append(f"app {app.kind}: unknown server "
                                    f"{server!r}")
            if app.shards < 1:
                problems.append(f"app {app.kind}: shards must be >= 1")
            elif app.shards > 1:
                placed = list(app.servers) or list(known)
                if len(placed) < app.shards:
                    problems.append(
                        f"app {app.kind}: {app.shards} shards need at "
                        f"least that many servers (got {len(placed)})")
            if app.leader is not None and app.leader not in known:
                problems.append(f"app {app.kind}: unknown leader "
                                f"{app.leader!r}")
            for key, device in app.placement:
                if "/" not in key:
                    problems.append(f"app {app.kind}: placement key "
                                    f"{key!r} is not 'server/actor'")
                elif key.split("/", 1)[0] not in known:
                    problems.append(f"app {app.kind}: placement "
                                    f"{key!r} names an unknown server")
                if device not in ("nic", "host"):
                    problems.append(f"app {app.kind}: placement {key!r} "
                                    f"device {device!r} is not nic|host")
        for fleet in self.fleets:
            if fleet.client not in clients:
                problems.append(f"fleet: unknown client {fleet.client!r}")
            if fleet.mode not in FLEET_MODES:
                problems.append(f"fleet {fleet.client}: unknown mode "
                                f"{fleet.mode!r}")
            if fleet.workload not in WORKLOAD_KINDS:
                problems.append(f"fleet {fleet.client}: unknown workload "
                                f"{fleet.workload!r}")
            if fleet.mode == "open" and fleet.rate_mpps <= 0:
                problems.append(f"fleet {fleet.client}: open-loop needs "
                                f"rate_mpps > 0")
        steering_names = [st.service for st in self.steering]
        for fleet in self.fleets:
            if fleet.dst.startswith("shard:"):
                kind = fleet.dst.split(":", 1)[1]
                if kind not in app_kinds:
                    problems.append(f"fleet {fleet.client}: dst "
                                    f"{fleet.dst!r} names no declared app")
            elif fleet.dst.startswith("svc:"):
                service = fleet.dst.split(":", 1)[1]
                if service not in steering_names:
                    problems.append(
                        f"fleet {fleet.client}: dst {fleet.dst!r} names no "
                        f"declared steering service")
            elif fleet.dst not in known:
                problems.append(f"fleet {fleet.client}: unknown dst "
                                f"{fleet.dst!r}")
        if len(set(steering_names)) != len(steering_names):
            problems.append(f"duplicate steering services: {steering_names}")
        for st in self.steering:
            if not st.service:
                problems.append("steering: service needs a name")
            if st.app is None and not st.backends:
                problems.append(f"steering {st.service}: needs an app or "
                                f"explicit backends")
            if st.app is not None and st.app not in app_kinds:
                problems.append(f"steering {st.service}: app {st.app!r} not "
                                f"declared")
            for backend in st.backends:
                if backend not in known:
                    problems.append(f"steering {st.service}: unknown backend "
                                    f"{backend!r}")
            if st.table_size < 2:
                problems.append(f"steering {st.service}: table_size must "
                                f"be >= 2")
            if st.window_us < 0:
                problems.append(f"steering {st.service}: window_us must "
                                f"be >= 0")
        if self.rebalance is not None:
            if not steering_names:
                problems.append("rebalance: needs a steering service")
            else:
                service = self.rebalance.service or steering_names[0]
                if service not in steering_names:
                    problems.append(f"rebalance: unknown steering service "
                                    f"{service!r}")
                else:
                    st = next(s for s in self.steering
                              if s.service == service)
                    if st.app != "rkv":
                        problems.append(
                            f"rebalance: service {service!r} must be backed "
                            f"by app='rkv' (the only app with cross-rack "
                            f"state hooks)")
                    else:
                        app = next(a for a in self.apps if a.kind == "rkv")
                        groups = app.replica_groups(self.server_names())
                        if any(len(g) > 1 for g in groups):
                            problems.append(
                                "rebalance: rkv replica groups must be "
                                "single-server (peer Paxos names do not yet "
                                "follow a migrated node)")
            if self.rebalance.notice_us < 0:
                problems.append("rebalance: notice_us must be >= 0")
            rb = self.rebalance
            if rb.on_load:
                if self.observability.pulse is None:
                    problems.append(
                        "rebalance: on_load needs observability.pulse "
                        "(the LoadFeed samples utilization per pulse)")
                if not 0.0 < rb.util_high <= 1.0:
                    problems.append(
                        f"rebalance: util_high must be in (0, 1] "
                        f"(got {rb.util_high})")
                if not 0.0 <= rb.skew_min <= 1.0:
                    problems.append(
                        f"rebalance: skew_min must be in [0, 1] "
                        f"(got {rb.skew_min})")
                if rb.sustain_periods < 1:
                    problems.append(
                        f"rebalance: sustain_periods must be >= 1 "
                        f"(got {rb.sustain_periods})")
                if rb.cooldown_us < 0:
                    problems.append(
                        f"rebalance: cooldown_us must be >= 0 "
                        f"(got {rb.cooldown_us})")
        pulse = self.observability.pulse
        if pulse is not None:
            if pulse.period_us <= 0:
                problems.append(
                    f"pulse: period_us must be positive "
                    f"(got {pulse.period_us})")
            if pulse.retention < 1:
                problems.append(
                    f"pulse: retention must be >= 1 (got {pulse.retention})")
        slo_names = [s.slo_name() for s in self.observability.slos]
        if len(set(slo_names)) != len(slo_names):
            problems.append(f"duplicate SLO names: {slo_names}")
        if self.observability.slos and pulse is None:
            problems.append(
                "observability: SLOs declared without pulse sampling "
                "(set observability.pulse)")
        for slo in self.observability.slos:
            label = f"slo {slo.slo_name()}"
            if (slo.service not in steering_names
                    and slo.service not in app_kinds):
                problems.append(
                    f"{label}: service {slo.service!r} names no declared "
                    f"steering service or app")
            if slo.threshold_us <= 0:
                problems.append(
                    f"{label}: threshold_us must be positive "
                    f"(got {slo.threshold_us})")
            if slo.window_us <= 0:
                problems.append(
                    f"{label}: window_us must be positive "
                    f"(got {slo.window_us})")
            elif pulse is not None and pulse.period_us > 0 \
                    and slo.window_us < pulse.period_us:
                problems.append(
                    f"{label}: window_us {slo.window_us} is shorter than "
                    f"the pulse period {pulse.period_us} (no sample fits)")
            if not 0.0 < slo.pct <= 100.0:
                problems.append(
                    f"{label}: pct must be in (0, 100] (got {slo.pct})")
            if not 0.0 < slo.budget <= 1.0:
                problems.append(
                    f"{label}: budget must be in (0, 1] (got {slo.budget})")
            if slo.slow_windows < 1:
                problems.append(
                    f"{label}: slow_windows must be >= 1 "
                    f"(got {slo.slow_windows})")
            if slo.burn_threshold <= 0:
                problems.append(
                    f"{label}: burn_threshold must be positive "
                    f"(got {slo.burn_threshold})")
        tenant_names = [t.name for t in self.tenants]
        tenant_set = set(tenant_names)
        if len(tenant_set) != len(tenant_names):
            problems.append(f"duplicate tenant names: {tenant_names}")
        nic_total = 0.0
        acc_total = 0.0
        for tenant in self.tenants:
            label = f"tenant {tenant.name or '?'}"
            if not tenant.name:
                problems.append("tenant: needs a name")
            if not 0.0 <= tenant.nic_core_share <= 1.0:
                # 0 means "declared but unshared": ledgers and monitors
                # run, the scheduler serves the tenant flat
                problems.append(
                    f"{label}: nic_core_share must be in [0, 1] "
                    f"(got {tenant.nic_core_share})")
            else:
                nic_total += tenant.nic_core_share
            if not 0.0 <= tenant.accelerator_share <= 1.0:
                problems.append(
                    f"{label}: accelerator_share must be in [0, 1] "
                    f"(got {tenant.accelerator_share})")
            else:
                acc_total += tenant.accelerator_share
            if tenant.dmo_budget_bytes < 0:
                problems.append(
                    f"{label}: dmo_budget_bytes must be >= 0 "
                    f"(got {tenant.dmo_budget_bytes})")
            for text in tenant.slos:
                try:
                    slo = SLOSpec.from_text(text)
                except ScenarioError as exc:
                    problems.append(f"{label}: {exc.problems[0]}")
                    continue
                if (slo.service not in steering_names
                        and slo.service not in app_kinds):
                    problems.append(
                        f"{label}: SLO service {slo.service!r} names no "
                        f"declared steering service or app")
            if tenant.slos and pulse is None:
                problems.append(
                    f"{label}: SLOs declared without pulse sampling "
                    f"(set observability.pulse)")
        if nic_total > 1.0 + 1e-9:
            problems.append(
                f"tenants: nic_core_share total {nic_total:g} exceeds 1")
        if acc_total > 1.0 + 1e-9:
            problems.append(
                f"tenants: accelerator_share total {acc_total:g} exceeds 1")
        for app in self.apps:
            if app.tenant and app.tenant not in tenant_set:
                problems.append(
                    f"app {app.kind}: tenant {app.tenant!r} not declared")
            elif self.tenants and not app.tenant:
                problems.append(
                    f"app {app.kind}: no tenant (spec declares "
                    f"tenants {sorted(tenant_set)})")
        for fleet in self.fleets:
            if fleet.tenant and fleet.tenant not in tenant_set:
                problems.append(
                    f"fleet {fleet.client}: tenant {fleet.tenant!r} "
                    f"not declared")
        rack_name_set = set(rack_names)
        for decl in self.faults:
            if decl.kind not in ALL_KINDS:
                problems.append(f"fault: unknown kind {decl.kind!r} "
                                f"(have {sorted(ALL_KINDS)})")
            if decl.node is not None and decl.node not in known:
                problems.append(f"fault {decl.kind}: unknown node "
                                f"{decl.node!r}")
            if decl.kind == "rack_down" and decl.target not in rack_name_set:
                problems.append(f"fault rack_down: unknown rack "
                                f"{decl.target!r}")
        ex = self.execution
        if ex.shards not in EXEC_SHARDS:
            problems.append(f"execution: unknown shards mode "
                            f"{ex.shards!r} (have {EXEC_SHARDS})")
        if ex.processes < 0:
            problems.append("execution: processes must be >= 0")
        if ex.fault_streams not in FAULT_STREAM_MODES:
            problems.append(f"execution: unknown fault_streams mode "
                            f"{ex.fault_streams!r} "
                            f"(have {FAULT_STREAM_MODES})")
        if ex.lookahead_us is not None and ex.lookahead_us <= 0:
            problems.append("execution: lookahead_us must be positive")
        for fleet in self.fleets:
            if fleet.lattice_us < 0:
                problems.append(f"fleet {fleet.client}: lattice_us must "
                                f"be >= 0")
        if ex.shards == "by-rack":
            # the shard executor proves bit-identity against the serial
            # run; planes that share mutable state across racks (or
            # sample global time) are not decomposable yet and are
            # rejected rather than silently diverging
            if self.steering:
                problems.append("execution: by-rack sharding does not "
                                "support steering services yet")
            if self.rebalance is not None:
                problems.append("execution: by-rack sharding does not "
                                "support the rebalancer yet")
            if self.observability.trace:
                problems.append("execution: by-rack sharding does not "
                                "support tracing yet")
            if self.observability.pulse is not None:
                problems.append("execution: by-rack sharding does not "
                                "support pulse sampling yet")
            if self.observability.slos:
                problems.append("execution: by-rack sharding does not "
                                "support SLO evaluation yet")
            if any(t.slos for t in self.tenants):
                problems.append("execution: by-rack sharding does not "
                                "support per-tenant SLO evaluation yet")
            if ex.fault_streams == "shared":
                problems.append(
                    "execution: by-rack sharding needs per-component "
                    "fault streams (shared streams depend on the global "
                    "event interleaving)")
            if self.is_multi_rack() \
                    and self.fabric.inter_rack_propagation_us <= 0:
                problems.append(
                    "execution: by-rack sharding needs "
                    "fabric.inter_rack_propagation_us > 0 (it is the "
                    "conservative lookahead)")
            for decl in self.faults:
                if decl.kind in EVENT_KINDS and decl.max_count is not None:
                    problems.append(
                        f"execution: by-rack sharding cannot honour "
                        f"max_count on event fault {decl.kind!r} (the cap "
                        f"is a global count across shards)")
        if self.duration_us <= 0:
            problems.append("duration_us must be positive")
        if problems:
            raise ScenarioError(problems)
        return self


# -- serialisation ------------------------------------------------------------

def to_dict(spec: ScenarioSpec) -> Dict[str, Any]:
    """Plain-data form (JSON/TOML-ready; tuples become lists)."""
    def convert(obj):
        if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
            out = {}
            for f in dataclasses.fields(obj):
                value = getattr(obj, f.name)
                if value == f.default and not isinstance(value, tuple):
                    # keep files terse: skip values at their default
                    # (tuple fields always serialise: their default
                    # sentinel is ())
                    if f.default is not dataclasses.MISSING:
                        continue
                out[f.name] = convert(value)
            return out
        if isinstance(obj, (list, tuple)):
            return [convert(v) for v in obj]
        if isinstance(obj, float) and obj == float("inf"):
            return "inf"
        return obj
    return convert(spec)


def _pairs(value) -> Tuple[Tuple[str, Any], ...]:
    """Option mappings arrive as dicts from JSON/TOML; specs store
    hashable (key, value) pairs."""
    if isinstance(value, dict):
        return tuple(sorted(value.items()))
    return tuple(tuple(item) for item in value)


def from_dict(data: Dict[str, Any]) -> ScenarioSpec:
    """Rebuild a spec from :func:`to_dict` output (or hand-written
    JSON/TOML); unknown keys raise so typos do not silently no-op."""
    def build(cls, payload):
        known = {f.name: f for f in dataclasses.fields(cls)}
        unknown = set(payload) - set(known)
        if unknown:
            raise ScenarioError(
                [f"{cls.__name__}: unknown field(s) {sorted(unknown)}"])
        kwargs = {}
        for key, value in payload.items():
            if key == "stop_us" and value == "inf":
                value = float("inf")
            kwargs[key] = value
        return cls(**kwargs)

    racks = []
    for rack in data.get("racks", []):
        servers = tuple(build(ServerSpec, {**s, "scheduler": _pairs(
            s.get("scheduler", ()))}) for s in rack.get("servers", []))
        clients = tuple(build(ClientSpec, c) for c in rack.get("clients", []))
        racks.append(RackSpec(name=rack["name"], servers=servers,
                              clients=clients))
    apps = tuple(build(AppSpec, {**a, "servers": tuple(a.get("servers", ())),
                                 "options": _pairs(a.get("options", ())),
                                 "placement": _pairs(a.get("placement", ()))})
                 for a in data.get("apps", []))
    fleets = tuple(build(FleetSpec, f) for f in data.get("fleets", []))
    tenants = tuple(
        build(TenantSpec, {**t, "slos": tuple(t.get("slos", ()))})
        for t in data.get("tenants", []))
    faults = tuple(build(FaultDecl, {**d, "at_us": tuple(d.get("at_us", ()))})
                   for d in data.get("faults", []))
    steering = tuple(
        build(SteeringSpec, {**s, "backends": tuple(s.get("backends", ()))})
        for s in data.get("steering", []))
    rebalance_data = data.get("rebalance")
    rebalance = (build(RebalanceSpec, rebalance_data)
                 if rebalance_data is not None else None)
    obs_data = dict(data.get("observability", {}))
    pulse_data = obs_data.pop("pulse", None)
    if pulse_data is None:
        pulse = None
    elif pulse_data is True:
        pulse = PulseSpec()        # "pulse": true — defaults
    else:
        pulse = build(PulseSpec, pulse_data)
    slos = tuple(
        SLOSpec.from_text(s) if isinstance(s, str) else build(SLOSpec, s)
        for s in obs_data.pop("slos", ()))
    obs = build(ObsSpec, {**obs_data, "pulse": pulse, "slos": slos})
    fabric = build(FabricSpec, data.get("fabric", {}))
    execution = build(ExecSpec, data.get("execution", {}))
    top = {k: v for k, v in data.items()
           if k not in ("racks", "apps", "fleets", "tenants", "faults",
                        "steering", "rebalance", "observability", "fabric",
                        "execution")}
    return build(ScenarioSpec, {
        **top, "racks": tuple(racks), "fabric": fabric, "apps": apps,
        "fleets": fleets, "tenants": tenants, "faults": faults,
        "steering": steering, "rebalance": rebalance, "observability": obs,
        "execution": execution})


def to_json(spec: ScenarioSpec, indent: int = 2) -> str:
    return json.dumps(to_dict(spec), indent=indent, sort_keys=False) + "\n"


def from_json(text: str) -> ScenarioSpec:
    return from_dict(json.loads(text))


def from_toml(text: str) -> ScenarioSpec:
    """TOML specs need ``tomllib`` (Python >= 3.11); gated, not required."""
    try:
        import tomllib
    except ImportError:  # pragma: no cover - version-dependent
        raise ScenarioError(
            ["TOML specs need Python >= 3.11 (tomllib); "
             "use the JSON form instead"]) from None
    return from_dict(tomllib.loads(text))


def from_file(path: str) -> ScenarioSpec:
    """Load a spec from a ``.json`` or ``.toml`` file."""
    with open(path, "r", encoding="utf-8") as fh:
        text = fh.read()
    if str(path).endswith(".toml"):
        return from_toml(text)
    return from_json(text)


def canonical_key(spec: ScenarioSpec) -> str:
    """Stable string form for cache keys (see ``repro.exec.cache``).

    Dataclass canonicalisation is field-ordered and address-free, so
    logically-equal specs produce equal keys across processes.
    """
    from ..exec.cache import canonical
    return canonical(spec)


# -- convenience constructors -------------------------------------------------

def single_rack(name: str, servers: Sequence[ServerSpec],
                clients: Sequence[str] = ("client",),
                fabric: Optional[FabricSpec] = None,
                **kwargs) -> ScenarioSpec:
    """The paper's topology: one ToR, N servers, client boxes."""
    rack = RackSpec(name="rack0", servers=tuple(servers),
                    clients=tuple(ClientSpec(c) for c in clients))
    return ScenarioSpec(name=name, racks=(rack,),
                        fabric=fabric or FabricSpec(), **kwargs)


def three_servers(nic: str = LIQUIDIO_CN2350.model, system: str = "ipipe",
                  host_workers: Optional[int] = None,
                  reliable: bool = False,
                  scheduler: Tuple[Tuple[str, Any], ...] = ()
                  ) -> Tuple[ServerSpec, ...]:
    """The s0/s1/s2 deployment every paper application runs on (§5.1)."""
    return tuple(ServerSpec(name=f"s{i}", nic=nic, system=system,
                            host_workers=host_workers, reliable=reliable,
                            scheduler=scheduler)
                 for i in range(3))
