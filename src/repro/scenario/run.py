"""Generic scenario runner and the shipped-spec registry.

``run_scenario(spec)`` builds the scenario, drives the simulator to the
spec's horizon, and collects a :class:`ScenarioResult` whose
``fingerprint()`` is a pure function of the simulation — the value the
determinism sanitizer and the round-trip tests compare.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .build import Scenario, build
from .spec import ScenarioSpec, from_file

SPEC_DIR = os.path.join(os.path.dirname(__file__), "specs")


@dataclass
class ScenarioResult:
    """Deterministic counters from one scenario run."""

    name: str
    seed: int
    duration_us: float
    sent: int = 0
    completed: int = 0
    mean_latency_us: float = 0.0
    p99_latency_us: float = 0.0
    client_received: Dict[str, int] = field(default_factory=dict)
    switch_counters: Dict[str, Tuple[int, int]] = field(default_factory=dict)
    host_cores: Dict[str, float] = field(default_factory=dict)
    nic_cores: Dict[str, float] = field(default_factory=dict)
    faults_injected: int = 0
    recoveries: int = 0

    @property
    def throughput_mops(self) -> float:
        return self.completed / self.duration_us if self.duration_us else 0.0

    def fingerprint(self) -> Tuple:
        """A compact, order-stable digest of the run's observable state."""
        return (
            self.name, self.seed, self.sent, self.completed,
            round(self.mean_latency_us, 9), round(self.p99_latency_us, 9),
            tuple(sorted(self.client_received.items())),
            tuple(sorted(self.switch_counters.items())),
            self.faults_injected, self.recoveries,
        )


def _collect(scenario: Scenario, duration_us: float) -> ScenarioResult:
    spec = scenario.spec
    result = ScenarioResult(name=spec.name, seed=spec.seed,
                            duration_us=duration_us)
    latencies: List[float] = []
    for gen in scenario.generators:
        result.sent += gen.sent
        if hasattr(gen, "completed"):
            result.completed += gen.completed
            latencies.extend(gen.latency.samples)
    if latencies:
        from ..sim import LatencyRecorder
        rec = LatencyRecorder("scenario")
        rec.samples = latencies
        result.mean_latency_us = rec.mean
        result.p99_latency_us = rec.p99
    for name, port in scenario.clients.items():
        result.client_received[name] = port.received
    for rack, tor in scenario.network.switches.items():
        result.switch_counters[tor.name] = (tor.forwarded, tor.dropped)
    spine = scenario.network.spine
    if spine is not None:
        result.switch_counters["spine"] = (spine.forwarded, spine.dropped)
    for name, server in scenario.servers.items():
        runtime = server.runtime
        result.host_cores[name] = runtime.host_cores_used(duration_us)
        if server.nic is not None and hasattr(server.nic, "cores_used"):
            result.nic_cores[name] = server.nic.cores_used(duration_us)
    plane = scenario.fault_plane
    if plane is not None:
        result.faults_injected = plane.snapshot().total
        from ..core import recovery_snapshot
        result.recoveries = sum(
            recovery_snapshot(server.runtime).restarts
            for server in scenario.servers.values()
            if hasattr(server.runtime, "nic_scheduler"))
    return result


def run_scenario(spec: ScenarioSpec,
                 duration_us: Optional[float] = None) -> ScenarioResult:
    """Build the spec's scenario, run it to the horizon, report counters.

    A spec with ``execution.shards == "by-rack"`` is dispatched to the
    parallel-in-time :class:`~repro.exec.shard.RackShardExecutor`; the
    result (and its fingerprint) is identical either way — that
    equivalence is the executor's contract.
    """
    if spec.execution.shards == "by-rack":
        from ..exec.shard import RackShardExecutor
        return RackShardExecutor(spec, duration_us=duration_us).run()
    scenario = build(spec)
    horizon = duration_us if duration_us is not None else spec.duration_us
    scenario.run(until=horizon)
    scenario.stop()
    return _collect(scenario, horizon)


# -- shipped specs ------------------------------------------------------------

def shipped_specs() -> List[str]:
    """Names of the specs packaged under ``scenario/specs/``."""
    if not os.path.isdir(SPEC_DIR):
        return []
    return sorted(
        os.path.splitext(entry)[0]
        for entry in os.listdir(SPEC_DIR)
        if entry.endswith(".json")
    )


def load_shipped(name: str) -> ScenarioSpec:
    """Load a packaged spec by name (without extension)."""
    path = os.path.join(SPEC_DIR, f"{name}.json")
    if not os.path.exists(path):
        known = ", ".join(shipped_specs()) or "none"
        raise KeyError(f"no shipped scenario {name!r} (known: {known})")
    return from_file(path)
