"""Scenario assembly: one ``build(spec)`` turning data into a simulation.

The builder owns every construction step the experiment modules used to
hand-roll: fabric wiring, server bring-up (iPipe, host-only iPipe, DPDK
and Floem baselines), application placement (including sharded RKV with
cross-rack Paxos replica groups), client fleets, fault-plane wiring and
observability riders.  Construction order is fixed — simulator, fabric,
trace plane, fault plane, servers (rack by rack), apps, client ports,
fleets, fault wiring — so a spec-built deployment schedules the exact
same event sequence as the seed's hand-wired testbeds.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..baselines import DpdkRuntime, FloemRuntime
from ..core import IPipeRuntime, Location, SchedulerConfig
from ..host import HostMachine
from ..net import (
    ClosedLoopGenerator,
    Fabric,
    Network,
    OpenLoopGenerator,
    Packet,
)
from ..nic import NicSpec, SmartNic, host_for
from ..sim import FaultPlane, FaultSpec, RecoveryPolicy, Rng, Simulator
from .spec import (
    AppSpec,
    FabricSpec,
    FleetSpec,
    ScenarioError,
    ScenarioSpec,
    SLOSpec,
    resolve_nic,
)


@dataclass
class Server:
    """One server box: host machine + (Smart)NIC + runtime."""

    name: str
    nic: Optional[SmartNic]
    machine: HostMachine
    runtime: object


class ClientPort:
    """Receive demux for a client node: routes replies to generators.

    Replies are demultiplexed to the *owning* generator by the request's
    ``client`` meta tag (O(1) per reply); packets carrying no tag — or a
    tag from no local generator — fall through to the registered sinks.
    """

    def __init__(self, sim: Simulator, network: Fabric, name: str):
        self.sim = sim
        self.network = network
        self.name = name
        self._generators: List[ClosedLoopGenerator] = []
        self._demux: Dict[str, ClosedLoopGenerator] = {}
        self._sinks: List[Callable[[Packet], None]] = []
        self.received: int = 0

    def receive(self, packet: Packet) -> None:
        self.received += 1
        key = packet.meta.get("client")
        if isinstance(key, tuple) and key:
            gen = self._demux.get(key[0])
            if gen is not None:
                gen.on_reply(packet)
                return
        for sink in self._sinks:
            sink(packet)

    def add_sink(self, fn: Callable[[Packet], None]) -> None:
        """A tap for replies owned by no closed-loop generator (e.g.
        open-loop response accounting)."""
        self._sinks.append(fn)

    def closed_loop(self, dst: str, clients: int, size: int,
                    payload_factory=None, rng: Optional[Rng] = None,
                    think_time_us: float = 0.0) -> ClosedLoopGenerator:
        # first generator keeps the node name as its tag (the seed's
        # meta layout); later ones get a unique suffix for the demux
        tag = (self.name if not self._generators
               else f"{self.name}#{len(self._generators)}")
        gen = ClosedLoopGenerator(
            self.sim, send=self.network.send,
            src=self.name, dst=dst, clients=clients, size=size,
            payload_factory=payload_factory, rng=rng,
            think_time_us=think_time_us, tag=tag)
        self._generators.append(gen)
        self._demux[tag] = gen
        return gen

    def open_loop(self, dst: str, rate_mpps: float, size: int,
                  payload_factory=None, rng: Optional[Rng] = None,
                  poisson: bool = True,
                  lattice_us: float = 0.0) -> OpenLoopGenerator:
        return OpenLoopGenerator(
            self.sim, send=self.network.send,
            src=self.name, dst=dst, rate_mpps=rate_mpps, size=size,
            payload_factory=payload_factory, rng=rng, poisson=poisson,
            lattice_us=lattice_us)


class BuiltApp:
    """One placed application: its replica groups and wired node objects."""

    def __init__(self, spec: AppSpec, groups: List[List[str]]):
        self.spec = spec
        self.kind = spec.kind
        self.groups = groups
        self.leaders: List[str] = []
        self.nodes: Dict[str, object] = {}   # server name -> app node

    def shard_for_key(self, key: str) -> int:
        return zlib.crc32(str(key).encode()) % max(len(self.groups), 1)


@dataclass
class Scenario:
    """A built simulation: everything ``build(spec)`` assembled."""

    spec: ScenarioSpec
    sim: Simulator
    network: Fabric
    servers: Dict[str, Server] = field(default_factory=dict)
    clients: Dict[str, ClientPort] = field(default_factory=dict)
    apps: List[BuiltApp] = field(default_factory=list)
    generators: List[object] = field(default_factory=list)
    fault_plane: Optional[FaultPlane] = None
    trace_plane: Optional[object] = None
    recovery: Optional[RecoveryPolicy] = None
    #: SteeringController when the spec declares steered services
    steering: Optional[object] = None
    #: Rebalancer driving cross-rack migration on rack outages
    rebalancer: Optional[object] = None
    #: PulsePlane when the spec declares continuous telemetry
    pulse_plane: Optional[object] = None

    def server(self, name: str) -> Server:
        return self.servers[name]

    def client(self, name: str) -> ClientPort:
        return self.clients[name]

    def app(self, kind: str) -> BuiltApp:
        for app in self.apps:
            if app.kind == kind:
                return app
        raise KeyError(f"no {kind!r} app in scenario {self.spec.name!r}")

    def run(self, until: Optional[float] = None) -> None:
        self.sim.run(until=until if until is not None
                     else self.spec.duration_us)

    def stop(self) -> None:
        for gen in self.generators:
            stop = getattr(gen, "stop", None)
            if stop is not None:
                stop()
        for server in self.servers.values():
            server.runtime.stop()


# -- server bring-up ----------------------------------------------------------

def make_server(sim: Simulator, network: Fabric, name: str,
                nic_spec: NicSpec, system: str = "ipipe",
                config: Optional[SchedulerConfig] = None,
                host_workers: Optional[int] = None,
                host_cores: Optional[int] = None,
                reliable: bool = False,
                fault_plane=None,
                recovery=None) -> Server:
    """Assemble one server of any supported runtime system."""
    if host_workers is None:
        host_workers = host_for(nic_spec).cores
    machine = HostMachine(sim, host_for(nic_spec), name=name,
                          cores=host_cores or host_for(nic_spec).cores)
    if system == "ipipe":
        nic = SmartNic(sim, nic_spec, name=f"{name}.nic")
        runtime = IPipeRuntime(sim, nic, machine, network, name,
                               config=config, host_workers=host_workers,
                               reliable=reliable, fault_plane=fault_plane,
                               recovery=recovery)
    elif system == "ipipe-hostonly":
        nic = SmartNic(sim, nic_spec, name=f"{name}.nic")
        runtime = IPipeRuntime(
            sim, nic, machine, network, name,
            config=config or SchedulerConfig(migration_enabled=False),
            host_workers=host_workers, host_only=True,
            reliable=reliable, fault_plane=fault_plane, recovery=recovery)
    elif system == "floem":
        nic = SmartNic(sim, nic_spec, name=f"{name}.nic")
        runtime = FloemRuntime(sim, nic, machine, network, name,
                               host_workers=host_workers)
    elif system == "dpdk":
        nic = None
        runtime = DpdkRuntime(sim, machine, network, name,
                              workers=host_workers,
                              link_bandwidth_gbps=nic_spec.bandwidth_gbps)
    else:
        raise ValueError(f"unknown system {system!r}")
    return Server(name=name, nic=nic, machine=machine, runtime=runtime)


def make_fabric(sim: Simulator, fabric: FabricSpec, racks=()) -> Fabric:
    """A fabric from its spec, with rack placements pre-registered."""
    if len(racks) <= 1:
        # the seed's star network: identical wiring and link names
        network = Network(sim, bandwidth_gbps=fabric.bandwidth_gbps,
                          propagation_us=fabric.propagation_us)
        network.switch.forwarding_latency_us = fabric.tor_latency_us
    else:
        network = Fabric(
            sim, bandwidth_gbps=fabric.bandwidth_gbps,
            propagation_us=fabric.propagation_us,
            racks=[r.name for r in racks],
            tor_latency_us=fabric.tor_latency_us,
            spine_latency_us=fabric.spine_latency_us,
            uplink_gbps=fabric.uplink_gbps,
            inter_rack_propagation_us=fabric.inter_rack_propagation_us)
    for rack in racks:
        for server in rack.servers:
            network.place(server.name, rack.name)
        for client in rack.clients:
            network.place(client.name, rack.name)
    return network


# -- application placement ----------------------------------------------------

def _install_payload_router(scenario: Scenario, name: str) -> None:
    """Route requests by the ``kind`` their payload carries (the wire
    format the paper's workload generators speak)."""
    runtime = scenario.servers[name].runtime
    original = runtime.on_packet

    def routed(packet, original=original):
        if isinstance(packet.payload, dict) and "kind" in packet.payload \
                and "payload" not in packet.payload:
            packet.kind = packet.payload["kind"]
        original(packet)

    if hasattr(runtime, "nic") and hasattr(runtime.nic, "packet_handler") \
            and not isinstance(runtime, DpdkRuntime):
        runtime.nic.packet_handler = routed
    else:
        scenario.network.egress(runtime.node_name).receiver = routed


def _build_app(scenario: Scenario, app: AppSpec) -> BuiltApp:
    """Place one app.  Replica groups (and leaders) are always computed
    from the *spec's* full server list, but nodes are only instantiated
    for servers present in ``scenario.servers`` — a rack-sharded build
    passes a partial server set and peers address remote group members
    by name over the fabric, exactly as the serial build does."""
    built = BuiltApp(app, app.replica_groups(scenario.spec.server_names()))
    if app.kind == "none":
        return built
    runtimes = {n: s.runtime for n, s in scenario.servers.items()}
    if app.kind == "rkv":
        from ..apps.rkv import RkvNode
        memtable_limit = app.option("memtable_limit")
        prefill_keys = app.option("prefill_keys", 0)
        prefill_value_bytes = app.option("prefill_value_bytes", 64)
        for group_idx, group in enumerate(built.groups):
            leader = (app.leader if app.leader in group else group[0])
            built.leaders.append(leader)
            for name in group:
                if name not in runtimes:
                    continue
                kwargs = {}
                if memtable_limit is not None:
                    kwargs["memtable_limit"] = memtable_limit
                node = RkvNode(runtimes[name],
                               [p for p in group if p != name],
                               initial_leader=leader, **kwargs)
                if prefill_keys:
                    node.prefill(prefill_keys, prefill_value_bytes)
                built.nodes[name] = node
    elif app.kind == "dt":
        from ..apps.dt import DtCoordinatorNode, DtParticipantNode
        for group in built.groups:
            coordinator, participants = group[0], group[1:]
            built.leaders.append(coordinator)
            kwargs = {}
            if app.option("log_segment_bytes") is not None:
                kwargs["log_segment_bytes"] = app.option("log_segment_bytes")
            if coordinator in runtimes:
                built.nodes[coordinator] = DtCoordinatorNode(
                    runtimes[coordinator],
                    participant_nodes=list(participants), **kwargs)
            for name in participants:
                if name in runtimes:
                    built.nodes[name] = DtParticipantNode(runtimes[name])
    elif app.kind == "rta":
        from ..apps.rta import RtaWorkerNode
        for group in built.groups:
            aggregate = app.option("aggregate")
            if aggregate is None and len(group) > 1:
                aggregate = group[0]
            built.leaders.append(group[0])
            for name in group:
                if name not in runtimes:
                    continue
                built.nodes[name] = RtaWorkerNode(
                    runtimes[name], aggregate_node=aggregate)
    elif app.kind == "firewall":
        from ..apps.nf import FirewallNode, generate_ruleset
        rules = generate_ruleset(app.option("rule_count", 8192),
                                 rng=Rng(app.option("rule_seed", 31)))
        for group in built.groups:
            built.leaders.append(group[0])
            for name in group:
                if name not in runtimes:
                    continue
                built.nodes[name] = FirewallNode(runtimes[name], rules=rules)
                runtimes[name].dispatch_table["data"] = "firewall"
    elif app.kind == "ipsec":
        from ..apps.nf import IpsecNode
        for group in built.groups:
            built.leaders.append(group[0])
            for name in group:
                if name not in runtimes:
                    continue
                built.nodes[name] = IpsecNode(runtimes[name])
                # a gateway's whole ingress is ESP traffic
                runtime = runtimes[name]
                original = runtime.on_packet

                def esp(packet, original=original):
                    packet.kind = "esp-pkt"
                    original(packet)
                runtime.nic.packet_handler = esp
    else:
        raise ValueError(f"unknown app kind {app.kind!r}")
    return built


def _actor_names(scenario: Scenario) -> Dict[str, set]:
    """Snapshot of registered actor names per server (tenant diffing)."""
    out: Dict[str, set] = {}
    for name, server in scenario.servers.items():
        table = getattr(server.runtime, "actors", None)
        out[name] = {a.name for a in table} if table is not None else set()
    return out


def _assign_tenant(scenario: Scenario, tenant: str,
                   before: Dict[str, set]) -> None:
    """Stamp the actors one app build just registered with its tenant.

    Registration ran before the app's tenant was known, so the DMO
    region tag is applied retroactively (moving any init-time
    allocations into the tenant's usage ledger)."""
    for name, server in scenario.servers.items():
        runtime = server.runtime
        table = getattr(runtime, "actors", None)
        if table is None:
            continue
        seen = before.get(name, set())
        for actor in table:
            if actor.name in seen:
                continue
            actor.tenant = tenant
            dmo = getattr(runtime, "dmo", None)
            if dmo is not None:
                dmo.set_tenant(actor.name, tenant)


def _apply_tenancy(scenario: Scenario) -> None:
    """Push the spec's tenant budgets into every runtime and register
    the TenantMonitor (docs/TENANCY.md).

    Shares/budgets that are 0 stay unconfigured — a spec declaring
    tenants purely for accounting adds no events and keeps the schedule
    bit-identical to the untenanted build."""
    spec = scenario.spec
    nic_shares = {t.name: t.nic_core_share
                  for t in spec.tenants if t.nic_core_share > 0.0}
    accel_shares = {t.name: t.accelerator_share
                    for t in spec.tenants if t.accelerator_share > 0.0}
    budgets = {t.name: t.dmo_budget_bytes
               for t in spec.tenants if t.dmo_budget_bytes > 0}
    for name in sorted(scenario.servers):
        runtime = scenario.servers[name].runtime
        if hasattr(runtime, "set_tenancy"):
            runtime.set_tenancy(nic_shares=nic_shares or None,
                                accel_shares=accel_shares or None,
                                dmo_budgets=budgets or None)
    checker = getattr(scenario.sim, "checker", None)
    if checker is not None and hasattr(checker, "watch_tenancy"):
        for name in sorted(scenario.servers):
            runtime = scenario.servers[name].runtime
            if hasattr(runtime, "nic_scheduler"):
                checker.watch_tenancy(name, runtime)


def _apply_placement_pins(scenario: Scenario) -> None:
    """Apply a placement plan's build-time device pins
    (:attr:`AppSpec.placement`): move each named actor to its planned
    device *before any traffic flows*, so the pinned start state is part
    of the deterministic build — the planner's equivalent of registering
    the actor there in the first place.  When a CheckPlane is installed,
    every applied pin lands on its PlanMonitor, which asserts the plan
    holds until the first reactive override."""
    by_server: Dict[str, Dict[str, str]] = {}
    for app in scenario.spec.apps:
        for key, device in app.placement:
            server, _, actor_name = key.partition("/")
            node = scenario.servers.get(server)
            if node is None:
                continue    # rack-sharded partial build: not our shard
            runtime = node.runtime
            table = getattr(runtime, "actors", None)
            if table is None:
                raise ScenarioError(
                    [f"placement pin {key!r}: {server} runs "
                     f"{type(runtime).__name__}, which has no actor table"])
            actor = table.lookup(actor_name)
            if actor is None:
                raise ScenarioError(
                    [f"placement pin {key!r}: no such actor on {server}"])
            by_server.setdefault(server, {})[actor_name] = device
            target = Location.NIC if device == "nic" else Location.HOST
            if actor.location is target:
                continue
            if actor.pinned:
                raise ScenarioError(
                    [f"placement pin {key!r}: actor is pinned to "
                     f"{actor.location.value} and cannot move to {device}"])
            runtime.dmo.migrate_all(actor.name, target)
            actor.location = target
            if hasattr(runtime, "update_steering"):
                runtime.update_steering(actor)
    checker = getattr(scenario.sim, "checker", None)
    if checker is not None and hasattr(checker, "watch_plan"):
        for server in sorted(by_server):
            checker.watch_plan(server, scenario.servers[server].runtime,
                               sorted(by_server[server].items()))


# -- client fleets ------------------------------------------------------------

def _make_workload(fleet: FleetSpec, shard: Optional[int] = None):
    """The fleet's request factory; sharded fleets get disjoint
    per-shard keyspaces so shard affinity holds by construction."""
    if fleet.workload == "none":
        return None
    from ..workloads import KvWorkload, TwitterWorkload, TxnWorkload
    if fleet.workload == "kv":
        wl = (KvWorkload(packet_size=fleet.size) if shard is None
              else KvWorkload(packet_size=fleet.size, seed=11 + 97 * shard))
        if shard is None:
            return wl.next_request

        def sharded(i, wl=wl, prefix=f"g{shard}:"):
            req = wl.next_request(i)
            req["key"] = prefix + req["key"]
            return req
        return sharded
    if fleet.workload == "txn":
        wl = (TxnWorkload(packet_size=fleet.size) if shard is None
              else TxnWorkload(packet_size=fleet.size, seed=13 + 97 * shard))
        return wl.next_request
    if fleet.workload == "twitter":
        wl = (TwitterWorkload(packet_size=fleet.size) if shard is None
              else TwitterWorkload(packet_size=fleet.size,
                                   seed=17 + 97 * shard))
        return wl.next_request
    raise ValueError(f"unknown workload {fleet.workload!r}")


def _build_fleet(scenario: Scenario, fleet: FleetSpec) -> None:
    port = scenario.clients[fleet.client]
    if fleet.dst.startswith("shard:"):
        app = scenario.app(fleet.dst.split(":", 1)[1])
        targets = [(idx, leader) for idx, leader in enumerate(app.leaders)]
    else:
        targets = [(None, fleet.dst)]
    for shard, dst in targets:
        factory = _make_workload(fleet, shard)
        seed = fleet.seed if shard is None else fleet.seed + 1000 * shard
        if fleet.mode == "closed":
            gen = port.closed_loop(
                dst=dst, clients=fleet.clients, size=fleet.size,
                payload_factory=factory, rng=Rng(seed),
                think_time_us=fleet.think_time_us)
        else:
            gen = port.open_loop(
                dst=dst, rate_mpps=fleet.rate_mpps / len(targets),
                size=fleet.size, payload_factory=factory,
                rng=Rng(seed), poisson=fleet.poisson,
                lattice_us=fleet.lattice_us)
        scenario.generators.append(gen)


# -- the entry point ----------------------------------------------------------

def build(spec: ScenarioSpec, sim: Optional[Simulator] = None) -> Scenario:
    """Assemble the whole simulation a spec describes.

    Construction order is part of the contract (it fixes the event
    schedule): simulator → fabric → trace plane → fault plane → servers
    in rack order → apps in spec order → client ports → fleets → fault
    wiring.  Pass ``sim`` to build inside an existing simulator (e.g.
    one instrumented by a SanitizerSession).
    """
    spec.validate()
    sim = sim or Simulator()
    network = make_fabric(sim, spec.fabric, spec.racks)
    scenario = Scenario(spec=spec, sim=sim, network=network)

    if spec.observability.trace:
        from ..obs import TracePlane
        scenario.trace_plane = TracePlane(sim)

    if spec.faults:
        streams = spec.execution.resolved_fault_streams()
        plane = FaultPlane(sim, seed=spec.seed,
                           component_streams=streams == "per-component")
        for decl in spec.faults:
            plane.add(FaultSpec(
                kind=decl.kind, target=decl.target, node=decl.node,
                probability=decl.probability, every_nth=decl.every_nth,
                at_us=tuple(decl.at_us), period_us=decl.period_us,
                start_us=decl.start_us, stop_us=decl.stop_us,
                duration_us=decl.duration_us, max_count=decl.max_count))
        scenario.fault_plane = plane

    delay = spec.observability.recovery_restart_delay_us
    if delay is not None:
        scenario.recovery = RecoveryPolicy(restart_delay_us=delay)

    for rack in spec.racks:
        for sspec in rack.servers:
            config = (SchedulerConfig(**sspec.scheduler_kwargs())
                      if sspec.scheduler else None)
            scenario.servers[sspec.name] = make_server(
                sim, network, sspec.name, resolve_nic(sspec.nic),
                system=sspec.system, config=config,
                host_workers=sspec.host_workers,
                host_cores=sspec.host_cores, reliable=sspec.reliable,
                fault_plane=scenario.fault_plane,
                recovery=scenario.recovery)

    for app in spec.apps:
        before = _actor_names(scenario) if spec.tenants else {}
        scenario.apps.append(_build_app(scenario, app))
        if spec.tenants and app.tenant:
            _assign_tenant(scenario, app.tenant, before)

    if spec.tenants:
        _apply_tenancy(scenario)

    if any(app.placement for app in spec.apps):
        _apply_placement_pins(scenario)

    if spec.steering:
        _build_steering(scenario)

    # workload-kind routing: only when generated traffic carries payload
    # kinds (hand-driven scenarios — chaos, scheduler traces — install
    # their own shims)
    if any(f.workload != "none" for f in spec.fleets):
        covered = set()
        for app in scenario.apps:
            if app.kind in ("rkv", "dt", "rta"):
                for group in app.groups:
                    for name in group:
                        if name not in scenario.servers:
                            continue
                        _install_payload_router(scenario, name)
                        covered.add(name)
        if spec.steering:
            # any server may inherit a steered backend after a rebalance,
            # so every runtime must understand the fleets' wire format
            for name in sorted(scenario.servers):
                runtime = scenario.servers[name].runtime
                if name not in covered and hasattr(runtime, "_steer_seen"):
                    _install_payload_router(scenario, name)

    for rack in spec.racks:
        for cspec in rack.clients:
            port = ClientPort(sim, network, cspec.name)
            network.attach(cspec.name, port.receive, rack=rack.name)
            scenario.clients[cspec.name] = port

    for fleet in spec.fleets:
        _build_fleet(scenario, fleet)

    if scenario.fault_plane is not None:
        scenario.fault_plane.wire_network(network)

    if spec.rebalance is not None and spec.steering:
        _build_rebalancer(scenario)

    if spec.observability.pulse is not None:
        _build_pulse(scenario)

    return scenario


def _build_steering(scenario: Scenario) -> None:
    """Install the SteeringController on every fabric switch and hook
    the runtimes' delivery notes + the CheckPlane monitor."""
    from ..net.steering import SteeringController
    spec = scenario.spec
    controller = SteeringController(scenario.sim)
    scenario.steering = controller
    for st in spec.steering:
        backends = list(st.backends)
        if not backends:
            backends = list(scenario.app(st.app).leaders)
        controller.add_service(st.service, backends,
                               table_size=st.table_size,
                               window_us=st.window_us)
    for tor in scenario.network.switches.values():
        controller.install(tor)
    spine = scenario.network.spine
    if spine is not None:
        controller.install(spine)
    for name in sorted(scenario.servers):
        runtime = scenario.servers[name].runtime
        if hasattr(runtime, "_steer_seen"):
            runtime.steer_note = (
                lambda pkt, _c=controller, _n=name: _c.note_delivery(_n, pkt))
    checker = getattr(scenario.sim, "checker", None)
    if checker is not None and hasattr(checker, "watch_steering"):
        checker.watch_steering(controller)


def _build_rebalancer(scenario: Scenario) -> None:
    """Arm the rack-evacuation policy over the steered rkv backends."""
    from ..core.migration import CrossRackMigrator
    from ..net.steering import MovableBackend, RebalancePolicy, Rebalancer
    spec = scenario.spec
    service_name = spec.rebalance.service or spec.steering[0].service
    st = next(s for s in spec.steering if s.service == service_name)
    app = scenario.app(st.app)
    backends: Dict[str, MovableBackend] = {}
    for leader in app.leaders:
        node = app.nodes[leader]
        backends[leader] = MovableBackend(
            actors=("consensus", "memtable", "sst_read", "compaction"),
            detach=node.detach, attach=node.attach)
    migrator = CrossRackMigrator(scenario.sim, steering=scenario.steering)
    rb = spec.rebalance
    policy = RebalancePolicy(notice_us=rb.notice_us,
                             return_home=rb.return_home,
                             window_us=st.window_us,
                             on_load=rb.on_load,
                             util_high=rb.util_high,
                             skew_min=rb.skew_min,
                             sustain_periods=rb.sustain_periods,
                             cooldown_us=rb.cooldown_us)
    scenario.rebalancer = Rebalancer(
        scenario.sim, controller=scenario.steering, migrator=migrator,
        policy=policy, service=st.service, backends=backends,
        runtimes={n: s.runtime for n, s in scenario.servers.items()
                  if hasattr(s.runtime, "_steer_seen")},
        rack_of=scenario.network.rack_of,
        fault_plane=scenario.fault_plane)


def _build_pulse(scenario: Scenario) -> None:
    """Install the PulsePlane: fleet probes, SLO evaluators, and — when
    the rebalance policy asks for it — the LoadFeed that turns sustained
    utilization skew into migrations.  Built last: probes read servers,
    steering and the rebalancer, and PulsePlane construction schedules
    nothing, so the event schedule is untouched."""
    from ..obs.pulse import LoadFeed, PulsePlane
    from ..obs.slo import SloEvaluator
    spec = scenario.spec
    ps = spec.observability.pulse
    pulse = PulsePlane(scenario.sim, period_us=ps.period_us,
                       retention=ps.retention)
    scenario.pulse_plane = pulse
    if ps.watch_servers:
        for name in sorted(scenario.servers):
            server = scenario.servers[name]
            if server.nic is None:
                continue
            sched = getattr(server.runtime, "nic_scheduler", None)
            pulse.watch_server(name, nic=server.nic, scheduler=sched,
                               runtime=server.runtime)
    if ps.watch_steering and scenario.steering is not None:
        pulse.watch_steering(scenario.steering)
    for slo in spec.observability.slos:
        pulse.watch_service(slo.service, pct=slo.pct,
                            window_us=slo.window_us)
        pulse.add_evaluator(SloEvaluator(
            scenario.sim, pulse.store, name=slo.slo_name(),
            metric=slo.metric(), threshold_us=slo.threshold_us,
            pct=slo.pct, window_us=slo.window_us,
            slow_windows=slo.slow_windows, budget=slo.budget,
            burn_threshold=slo.burn_threshold, period_us=ps.period_us))
    if spec.tenants:
        _build_tenant_pulse(scenario, pulse)
    if scenario.rebalancer is not None and scenario.rebalancer.policy.on_load:
        LoadFeed(pulse, scenario.rebalancer)
    checker = getattr(scenario.sim, "checker", None)
    if checker is not None and hasattr(checker, "watch_pulse"):
        checker.watch_pulse(pulse)


def _build_tenant_pulse(scenario: Scenario, pulse) -> None:
    """Per-tenant telemetry (docs/TENANCY.md): ``tenant.util.<t>`` off
    the schedulers' busy ledgers, ``tenant.steer.<t>`` over the tenant's
    SLO services, ``tenant.svc.<t>.*`` quantiles, and one tenant-named
    SLO evaluator per :attr:`TenantSpec.slos` entry."""
    from ..obs.slo import SloEvaluator
    spec = scenario.spec
    ps = spec.observability.pulse
    schedulers = [scenario.servers[n].runtime.nic_scheduler
                  for n in sorted(scenario.servers)
                  if hasattr(scenario.servers[n].runtime, "nic_scheduler")]
    watched = {(slo.service, slo.pct) for slo in spec.observability.slos}
    for tenant in spec.tenants:
        slos = [SLOSpec.from_text(raw) for raw in tenant.slos]
        services = tuple(sorted({slo.service for slo in slos}))
        pulse.watch_tenant(tenant.name, schedulers=schedulers,
                           services=services,
                           controller=scenario.steering)
        for slo in slos:
            if (slo.service, slo.pct) not in watched:
                watched.add((slo.service, slo.pct))
                pulse.watch_service(slo.service, pct=slo.pct,
                                    window_us=slo.window_us)
            pulse.add_evaluator(SloEvaluator(
                scenario.sim, pulse.store,
                name=f"{tenant.name}.{slo.slo_name()}",
                metric=slo.metric(), threshold_us=slo.threshold_us,
                pct=slo.pct, window_us=slo.window_us,
                slow_windows=slo.slow_windows, budget=slo.budget,
                burn_threshold=slo.burn_threshold, period_us=ps.period_us))
