"""``python -m repro`` — regenerate the paper's tables and figures."""

from .cli import main

raise SystemExit(main())
