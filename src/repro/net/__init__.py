"""Network substrate: packets, links, ToR switch, traffic generators."""

from .packet import (
    FCS_BYTES,
    IFG_BYTES,
    MIN_FRAME,
    MTU_FRAME,
    PREAMBLE_BYTES,
    WIRE_OVERHEAD_BYTES,
    Packet,
    line_rate_pp_us,
    line_rate_pps,
    serialization_delay_us,
    wire_bits,
)
from .link import DuplexPort, Link
from .switch import SpineSwitch, ToRSwitch
from .fabric import Fabric, Network
from .pktgen import ClosedLoopGenerator, OpenLoopGenerator
from .steering import (
    MaglevTable,
    MovableBackend,
    RebalancePolicy,
    Rebalancer,
    SteeringController,
)

__all__ = [
    "FCS_BYTES",
    "IFG_BYTES",
    "MIN_FRAME",
    "MTU_FRAME",
    "PREAMBLE_BYTES",
    "WIRE_OVERHEAD_BYTES",
    "Packet",
    "line_rate_pp_us",
    "line_rate_pps",
    "serialization_delay_us",
    "wire_bits",
    "DuplexPort",
    "Fabric",
    "Link",
    "Network",
    "SpineSwitch",
    "ToRSwitch",
    "ClosedLoopGenerator",
    "OpenLoopGenerator",
    "MaglevTable",
    "MovableBackend",
    "RebalancePolicy",
    "Rebalancer",
    "SteeringController",
]
