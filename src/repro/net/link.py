"""Point-to-point links with serialization and propagation delay.

A link is unidirectional (full-duplex ports are modelled as two links).
Serialization is enforced: a frame cannot start clocking out until the
previous frame has finished, which is what makes small-packet line rate a
packets-per-second limit rather than a bits-per-second one.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..sim import Simulator
from .packet import Packet, serialization_delay_us

#: Default one-way propagation within a rack (fibre + PHY), microseconds.
DEFAULT_PROPAGATION_US = 0.3

Receiver = Callable[[Packet], None]


class Link:
    """A unidirectional link feeding a receiver callback.

    The transmit side models an output queue of unbounded depth: frames
    handed to :meth:`transmit` are serialized back-to-back at line rate.
    ``queue_delay`` therefore emerges naturally under overload.
    """

    def __init__(self, sim: Simulator, bandwidth_gbps: float,
                 receiver: Optional[Receiver] = None,
                 propagation_us: float = DEFAULT_PROPAGATION_US,
                 name: str = "link"):
        if bandwidth_gbps <= 0:
            raise ValueError("bandwidth must be positive")
        self.sim = sim
        self.bandwidth_gbps = bandwidth_gbps
        self.propagation_us = propagation_us
        self.receiver = receiver
        self.name = name
        self._next_free = 0.0
        self.frames_sent = 0
        self.bytes_sent = 0
        #: optional FaultPlane consulted per frame (see repro.sim.faults)
        self.fault_plane = None
        self.frames_dropped = 0
        self.frames_corrupted = 0

    def connect(self, receiver: Receiver) -> None:
        self.receiver = receiver

    def transmit(self, packet: Packet) -> float:
        """Enqueue a frame; returns its delivery time at the receiver."""
        if self.receiver is None:
            raise RuntimeError(f"{self.name}: no receiver connected")
        start = max(self.sim.now, self._next_free)
        ser = serialization_delay_us(self.bandwidth_gbps, packet.size)
        done = start + ser
        self._next_free = done
        deliver_at = done + self.propagation_us
        self.frames_sent += 1
        self.bytes_sent += packet.size
        fate = None
        if self.fault_plane is not None:
            fate = self.fault_plane.frame_fate(self.name, packet)
        tracer = getattr(self.sim, "tracer", None)
        if tracer is not None:
            # wire occupancy: queueing behind the previous frame is
            # visible as start > sim.now in the exported trace
            tracer.record_span(
                "tx", "link", start, deliver_at,
                trace=packet.meta.get("trace"),
                node=self.name.split(".", 1)[0], track=self.name,
                size=packet.size, kind=packet.kind,
                fate=fate or "delivered")
        if fate is not None:
            # the frame still occupies the wire; it is just never
            # handed up (lost, or discarded by the receiving MAC on
            # an FCS mismatch)
            if fate == "drop":
                self.frames_dropped += 1
            else:
                self.frames_corrupted += 1
            return deliver_at
        self.sim.post_at(deliver_at, self.receiver, packet)
        return deliver_at

    @property
    def backlog_us(self) -> float:
        """How far ahead of now the transmit queue currently extends."""
        return max(0.0, self._next_free - self.sim.now)

    def utilization(self, elapsed_us: float) -> float:
        """Fraction of capacity used, based on bytes clocked out."""
        if elapsed_us <= 0:
            return 0.0
        sent_bits = self.bytes_sent * 8
        capacity_bits = self.bandwidth_gbps * 1e9 * elapsed_us / 1e6
        return min(sent_bits / capacity_bits, 1.0)


class DuplexPort:
    """A pair of links modelling a full-duplex port between two endpoints."""

    def __init__(self, sim: Simulator, bandwidth_gbps: float,
                 propagation_us: float = DEFAULT_PROPAGATION_US,
                 name: str = "port"):
        self.tx = Link(sim, bandwidth_gbps, propagation_us=propagation_us,
                       name=f"{name}.tx")
        self.rx = Link(sim, bandwidth_gbps, propagation_us=propagation_us,
                       name=f"{name}.rx")
