"""The fabric layer: racks of nodes behind ToRs, joined by a spine.

A :class:`Fabric` generalises the paper's single-ToR star (§2.2.1) to a
two-tier datacenter topology: every rack gets its own per-rack subnet
behind a :class:`~repro.net.switch.ToRSwitch`, and with more than one
rack an aggregation :class:`~repro.net.switch.SpineSwitch` joins the
ToRs.  Intra-rack traffic takes the classic node→ToR→node path;
cross-rack traffic additionally crosses ToR→spine→ToR over longer
(inter-rack propagation) links, so cross-rack RTTs are strictly longer
than intra-rack ones.

:class:`Network` — the name the rest of the codebase grew up with — is
the single-rack special case and behaves exactly like the seed's star
topology (same link names, same event schedule).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Sequence

from ..sim import Simulator
from .link import Link
from .packet import Packet
from .switch import (
    DEFAULT_SPINE_LATENCY_US,
    DEFAULT_SWITCH_LATENCY_US,
    SpineSwitch,
    ToRSwitch,
)

#: One-way propagation of the longer ToR↔spine runs, microseconds.
DEFAULT_INTER_RACK_PROPAGATION_US = 1.2
#: ToR uplinks are usually provisioned fatter than host ports; the
#: default oversubscription keeps a 4:1-ish rack at full tilt.
DEFAULT_UPLINK_MULTIPLIER = 4.0


class Fabric:
    """Multi-rack topology: per-rack ToRs, optionally behind one spine.

    Nodes are anything exposing ``receive(packet)``.  :meth:`attach`
    builds the host→ToR and ToR→host links and returns the host-side
    uplink so the node can transmit.  Which rack a node lands in is
    resolved in priority order: the explicit ``rack=`` argument, a prior
    :meth:`place` registration, else the first rack.
    """

    def __init__(self, sim: Simulator, bandwidth_gbps: float,
                 propagation_us: float = 0.3,
                 racks: Sequence[str] = ("rack0",),
                 tor_latency_us: float = DEFAULT_SWITCH_LATENCY_US,
                 spine_latency_us: float = DEFAULT_SPINE_LATENCY_US,
                 uplink_gbps: Optional[float] = None,
                 inter_rack_propagation_us: float =
                 DEFAULT_INTER_RACK_PROPAGATION_US):
        self.sim = sim
        self.bandwidth_gbps = bandwidth_gbps
        self.propagation_us = propagation_us
        self.rack_names: List[str] = list(racks) or ["rack0"]
        if len(set(self.rack_names)) != len(self.rack_names):
            raise ValueError("duplicate rack names")
        self.inter_rack_propagation_us = inter_rack_propagation_us
        self.switches: Dict[str, ToRSwitch] = {}
        self._uplinks: Dict[str, Link] = {}
        self._placement: Dict[str, str] = {}
        self._node_rack: Dict[str, str] = {}
        self.spine: Optional[SpineSwitch] = None
        self._spine_links: List[Link] = []
        multi = len(self.rack_names) > 1
        if multi:
            self.spine = SpineSwitch(
                sim, forwarding_latency_us=spine_latency_us)
        up_bw = uplink_gbps or bandwidth_gbps * DEFAULT_UPLINK_MULTIPLIER
        for rack in self.rack_names:
            tor = ToRSwitch(sim, name=f"{rack}.tor" if multi else "tor",
                            forwarding_latency_us=tor_latency_us)
            self.switches[rack] = tor
            if multi:
                up = Link(sim, up_bw, receiver=self.spine.ingest,
                          propagation_us=inter_rack_propagation_us,
                          name=f"{rack}.spine-up")
                down = Link(sim, up_bw, receiver=tor.deliver_local,
                            propagation_us=inter_rack_propagation_us,
                            name=f"{rack}.spine-down")
                tor.uplink = up
                self.spine.attach_rack(rack, down)
                self._spine_links.extend((up, down))

    # -- placement ------------------------------------------------------------
    def place(self, name: str, rack: str) -> None:
        """Pre-register which rack ``name`` will attach into."""
        if rack not in self.switches:
            raise ValueError(f"unknown rack {rack!r} "
                             f"(have {self.rack_names})")
        self._placement[name] = rack

    def rack_of(self, name: str) -> str:
        """The rack an attached node lives in."""
        return self._node_rack[name]

    # -- wiring ---------------------------------------------------------------
    def attach(self, name: str, receiver: Callable[[Packet], None],
               bandwidth_gbps: float = None, rack: Optional[str] = None
               ) -> Link:
        rack = rack or self._placement.get(name) or self.rack_names[0]
        tor = self.switches.get(rack)
        if tor is None:
            raise ValueError(f"unknown rack {rack!r} "
                             f"(have {self.rack_names})")
        bw = bandwidth_gbps or self.bandwidth_gbps
        downlink = Link(self.sim, bw, receiver=receiver,
                        propagation_us=self.propagation_us,
                        name=f"{name}.down")
        tor.attach(name, downlink)
        uplink = Link(self.sim, bw, receiver=tor.ingest,
                      propagation_us=self.propagation_us,
                      name=f"{name}.up")
        self._uplinks[name] = uplink
        self._node_rack[name] = rack
        if self.spine is not None:
            self.spine.register(name, rack)
        return uplink

    def uplink(self, name: str) -> Link:
        return self._uplinks[name]

    def egress(self, name: str) -> Link:
        """The ToR→node downlink for an attached node, any rack."""
        return self.switches[self._node_rack[name]]._egress[name]

    def links(self) -> Iterator[Link]:
        """Every link in the fabric: node uplinks, ToR downlinks, then
        the ToR↔spine pairs (the order FaultPlane wiring relies on)."""
        yield from self._uplinks.values()
        for rack in self.rack_names:
            yield from self.switches[rack]._egress.values()
        yield from self._spine_links

    # -- traffic ---------------------------------------------------------------
    def send(self, packet: Packet) -> None:
        """Transmit from ``packet.src``'s uplink."""
        self._uplinks[packet.src].transmit(packet)

    # -- single-rack compatibility ---------------------------------------------
    @property
    def switch(self) -> ToRSwitch:
        """The sole ToR of a single-rack fabric (the seed's ``.switch``)."""
        if len(self.rack_names) != 1:
            raise AttributeError(
                "a multi-rack fabric has no single .switch; use "
                ".switches[rack] or .egress(node)")
        return self.switches[self.rack_names[0]]


class Network(Fabric):
    """Star topology: every node connects to one ToR switch.

    The seed's single-rack network, kept as the default for every
    experiment that models the paper's 8-node testbed.
    """

    def __init__(self, sim: Simulator, bandwidth_gbps: float,
                 propagation_us: float = 0.3):
        super().__init__(sim, bandwidth_gbps, propagation_us=propagation_us,
                         racks=("rack0",))
