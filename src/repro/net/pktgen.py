"""Workload traffic generators, mirroring the paper's augmented DPDK pkt-gen.

Two modes, matching the evaluation methodology:

* :class:`OpenLoopGenerator` — Poisson arrivals at a target rate, used for
  the characterization and scheduler experiments (§2.2, §5.4).
* :class:`ClosedLoopGenerator` — N logical clients, each with at most one
  outstanding request (§5.1: "invokes operations in a closed-loop manner").

Generators stamp packets with their creation time so end-to-end latency can
be measured at the point the reply returns.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from ..sim import LatencyRecorder, Rng, Simulator, Timeout, spawn
from .packet import Packet

PayloadFactory = Callable[[int], Any]
SendFn = Callable[[Packet], None]


class OpenLoopGenerator:
    """Poisson (or deterministic) open-loop source of request packets.

    The send path is the hottest loop in every sweep, so packet emission
    runs on the kernel's handle-free fast path (:meth:`Simulator.post`)
    rather than a generator process: each emission callback sends one
    packet and arms the next, and interarrival gaps are drawn from the
    RNG ``batch`` at a time to amortise the draw loop.  The RNG draw
    *order* is identical to the seed's one-draw-per-packet generator, so
    seeded runs reproduce the same packet schedule.
    """

    def __init__(self, sim: Simulator, send: SendFn, src: str, dst: str,
                 rate_mpps: float, size: int,
                 payload_factory: Optional[PayloadFactory] = None,
                 rng: Optional[Rng] = None, poisson: bool = True,
                 flow_count: int = 16, batch: int = 64,
                 lattice_us: float = 0.0):
        if rate_mpps <= 0:
            raise ValueError("rate must be positive")
        self.sim = sim
        self.send = send
        self.src = src
        self.dst = dst
        self.rate_per_us = rate_mpps  # 1 Mpps == 1 packet/µs
        self.size = size
        self.payload_factory = payload_factory
        self.rng = rng or Rng(1)
        self.poisson = poisson
        self.flow_count = flow_count
        self.batch = max(1, batch)
        #: arrival batching: with ``lattice_us > 0`` all arrivals of each
        #: lattice window are drawn and scheduled at once via absolute
        #: ``post_at`` — one bookkeeping event per window instead of one
        #: re-arm per packet.  Emission timestamps are bit-identical to
        #: the per-packet chain (both accumulate t += gap in the same
        #: float order) and the Rng draw order is unchanged; only event
        #: *sequence numbers* shift, so exact-timestamp ties against
        #: other event sources may break differently — which is why this
        #: is opt-in per fleet (FleetSpec.lattice_us).
        self.lattice_us = lattice_us
        self.sent = 0
        self._stop = False
        self._gaps: list = []        # prefetched gaps, reversed for pop()
        if lattice_us > 0:
            self._next_at = sim.now + self._next_gap()
            self._arm_window()
        else:
            self._arm()

    def stop(self) -> None:
        self._stop = True

    def _next_gap(self) -> float:
        if self.poisson:
            return self.rng.poisson_interarrival(self.rate_per_us)
        return 1.0 / self.rate_per_us

    def _refill(self) -> None:
        if self.poisson:
            draw = self.rng.poisson_interarrival
            rate = self.rate_per_us
            gaps = [draw(rate) for _ in range(self.batch)]
        else:
            gaps = [1.0 / self.rate_per_us] * self.batch
        gaps.reverse()
        self._gaps = gaps

    def _arm(self) -> None:
        if not self._gaps:
            self._refill()
        self.sim.post(self._gaps.pop(), self._emit)

    def _arm_window(self) -> None:
        """Schedule every arrival of the next lattice window at once."""
        if self._stop:
            return
        end = self.sim.now + self.lattice_us
        t = self._next_at
        post_at = self.sim.post_at
        emit = self._emit_batched
        next_gap = self._next_gap
        while t < end:
            post_at(t, emit)
            t = t + next_gap()
        self._next_at = t
        post_at(end, self._arm_window)

    def _emit_batched(self) -> None:
        if self._stop:
            return
        payload = (self.payload_factory(self.sent)
                   if self.payload_factory else None)
        packet = Packet(
            src=self.src, dst=self.dst, size=self.size,
            flow_id=self.sent % self.flow_count,
            payload=payload, created_at=self.sim.now,
        )
        self.send(packet)
        self.sent += 1

    def _emit(self) -> None:
        if self._stop:
            return
        payload = (self.payload_factory(self.sent)
                   if self.payload_factory else None)
        packet = Packet(
            src=self.src, dst=self.dst, size=self.size,
            flow_id=self.sent % self.flow_count,
            payload=payload, created_at=self.sim.now,
        )
        self.send(packet)
        self.sent += 1
        self._arm()


class ClosedLoopGenerator:
    """N clients, one outstanding request each; records reply latency.

    The destination is expected to eventually cause a reply packet to be
    routed back to ``src``; wire :meth:`on_reply` into the client node's
    receive path.
    """

    def __init__(self, sim: Simulator, send: SendFn, src: str, dst: str,
                 clients: int, size: int,
                 payload_factory: Optional[PayloadFactory] = None,
                 rng: Optional[Rng] = None, think_time_us: float = 0.0,
                 tag: Optional[str] = None):
        if clients <= 0:
            raise ValueError("need at least one client")
        self.sim = sim
        self.send = send
        self.src = src
        self.dst = dst
        #: demux tag stamped into every request's ``client`` meta key;
        #: unique per generator so a multi-generator client node can
        #: route each reply to exactly its owning generator
        self.tag = tag if tag is not None else src
        self.clients = clients
        self.size = size
        self.payload_factory = payload_factory
        self.rng = rng or Rng(2)
        self.think_time_us = think_time_us
        self.latency = LatencyRecorder(f"{src}->{dst}")
        self.completed = 0
        self.sent = 0
        self._stop = False
        self._pending: dict = {}
        for client in range(clients):
            spawn(sim, self._client(client), name=f"client-{src}-{client}")

    def stop(self) -> None:
        self._stop = True

    def throughput_mpps(self, elapsed_us: float) -> float:
        """Completed operations per microsecond (== Mops)."""
        return self.completed / elapsed_us if elapsed_us > 0 else 0.0

    def on_reply(self, packet: Packet) -> None:
        """Deliver a reply packet back to its waiting client."""
        waiter = self._pending.pop(packet.meta.get("client"), None)
        if waiter is not None:
            self.latency.record(self.sim.now - packet.created_at)
            self.completed += 1
            waiter.trigger(packet)

    def _client(self, client_id: int):
        from ..sim import Signal

        while not self._stop:
            if self.think_time_us:
                yield Timeout(self.rng.exponential(self.think_time_us))
            payload = (self.payload_factory(self.sent)
                       if self.payload_factory else None)
            packet = Packet(
                src=self.src, dst=self.dst, size=self.size,
                flow_id=client_id, payload=payload,
                created_at=self.sim.now,
            )
            packet.meta["client"] = (self.tag, client_id)
            waiter = Signal(self.sim)
            self._pending[(self.tag, client_id)] = waiter
            self.send(packet)
            self.sent += 1
            yield waiter
