"""Packets and Ethernet framing arithmetic.

Sizes follow the paper's convention: a "packet size" is the Ethernet frame
size (header + payload + trailer, e.g. 64B minimum, 1500B ≈ MTU).  On the
wire each frame additionally pays preamble (8B), inter-frame gap (12B) and
is accounted with its FCS; line-rate math must include that 20–24B
overhead, which is why 10GbE carries ~14.88 Mpps of 64B frames.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

#: Ethernet preamble + start frame delimiter.
PREAMBLE_BYTES = 8
#: Minimum inter-frame gap.
IFG_BYTES = 12
#: Frame check sequence — already included in the quoted frame size
#: (a "64B packet" is 64 bytes incl. FCS, hence 84B on the wire).
FCS_BYTES = 4
#: Per-frame wire overhead beyond the quoted frame size.
WIRE_OVERHEAD_BYTES = PREAMBLE_BYTES + IFG_BYTES

MIN_FRAME = 64
MTU_FRAME = 1500

_packet_ids = itertools.count()


def wire_bits(frame_bytes: int) -> int:
    """Bits a frame occupies on the wire, including preamble/IFG/FCS."""
    return (frame_bytes + WIRE_OVERHEAD_BYTES) * 8


def line_rate_pps(bandwidth_gbps: float, frame_bytes: int) -> float:
    """Packets per second a link sustains at the given frame size."""
    return bandwidth_gbps * 1e9 / wire_bits(frame_bytes)


def line_rate_pp_us(bandwidth_gbps: float, frame_bytes: int) -> float:
    """Packets per microsecond at line rate (convenient for the DES)."""
    return line_rate_pps(bandwidth_gbps, frame_bytes) / 1e6


def serialization_delay_us(bandwidth_gbps: float, frame_bytes: int) -> float:
    """Time to clock one frame onto the wire, in microseconds."""
    return wire_bits(frame_bytes) / (bandwidth_gbps * 1e9) * 1e6


@dataclass
class Packet:
    """A simulated network packet.

    ``payload`` carries the application-level request object (functional
    state, inspected by actor handlers); ``size`` drives all timing.
    """

    src: str
    dst: str
    size: int
    flow_id: int = 0
    payload: Any = None
    kind: str = "data"
    created_at: float = 0.0
    meta: Dict[str, Any] = field(default_factory=dict)
    packet_id: int = field(default_factory=lambda: next(_packet_ids))

    def __post_init__(self) -> None:
        if self.size < MIN_FRAME:
            # Short frames are padded to the Ethernet minimum on the wire.
            self.size = MIN_FRAME

    def reply(self, size: Optional[int] = None, payload: Any = None,
              kind: str = "reply") -> "Packet":
        """Build a response packet heading back to this packet's source."""
        return Packet(
            src=self.dst,
            dst=self.src,
            size=size if size is not None else self.size,
            flow_id=self.flow_id,
            payload=payload,
            kind=kind,
            created_at=self.created_at,
            meta=dict(self.meta),
        )
