"""A top-of-rack switch and the fabric wiring hosts together.

Models the Arista DCS-7050S / Cavium XP70 ToR from the testbed (§2.2.1):
cut-through forwarding with sub-microsecond port-to-port latency, one
full-duplex port per attached node.
"""

from __future__ import annotations

from typing import Callable, Dict

from ..sim import Simulator
from .link import Link
from .packet import Packet

#: Cut-through forwarding latency of a datacenter ToR, microseconds.
DEFAULT_SWITCH_LATENCY_US = 0.45


class ToRSwitch:
    """Output-queued ToR switch: per-destination egress links."""

    def __init__(self, sim: Simulator, name: str = "tor",
                 forwarding_latency_us: float = DEFAULT_SWITCH_LATENCY_US):
        self.sim = sim
        self.name = name
        self.forwarding_latency_us = forwarding_latency_us
        self._egress: Dict[str, Link] = {}
        self.forwarded = 0
        self.dropped = 0

    def attach(self, node: str, egress: Link) -> None:
        """Register the link carrying traffic from the switch to ``node``."""
        self._egress[node] = egress

    def ingest(self, packet: Packet) -> None:
        """Receive a frame from any ingress port and forward it."""
        egress = self._egress.get(packet.dst)
        if egress is None:
            self.dropped += 1
            return
        self.forwarded += 1
        self.sim.post(self.forwarding_latency_us, egress.transmit, packet)


class Network:
    """Star topology: every node connects to one ToR switch.

    Nodes are anything exposing ``receive(packet)``.  ``attach`` builds the
    host→switch and switch→host links and returns the host-side uplink so
    the node can transmit.
    """

    def __init__(self, sim: Simulator, bandwidth_gbps: float,
                 propagation_us: float = 0.3):
        self.sim = sim
        self.bandwidth_gbps = bandwidth_gbps
        self.propagation_us = propagation_us
        self.switch = ToRSwitch(sim)
        self._uplinks: Dict[str, Link] = {}

    def attach(self, name: str, receiver: Callable[[Packet], None],
               bandwidth_gbps: float = None) -> Link:
        bw = bandwidth_gbps or self.bandwidth_gbps
        downlink = Link(self.sim, bw, receiver=receiver,
                        propagation_us=self.propagation_us,
                        name=f"{name}.down")
        self.switch.attach(name, downlink)
        uplink = Link(self.sim, bw, receiver=self.switch.ingest,
                      propagation_us=self.propagation_us,
                      name=f"{name}.up")
        self._uplinks[name] = uplink
        return uplink

    def uplink(self, name: str) -> Link:
        return self._uplinks[name]

    def send(self, packet: Packet) -> None:
        """Transmit from ``packet.src``'s uplink."""
        self._uplinks[packet.src].transmit(packet)
