"""Switching elements: top-of-rack and spine/aggregation switches.

Models the Arista DCS-7050S / Cavium XP70 ToR from the testbed (§2.2.1):
cut-through forwarding with sub-microsecond port-to-port latency, one
full-duplex port per attached node.  A :class:`SpineSwitch` aggregates
several ToRs into a two-tier fabric (see :mod:`repro.net.fabric`);
cross-rack traffic pays the ToR→spine→ToR path.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..sim import Simulator
from .link import Link
from .packet import Packet

#: Cut-through forwarding latency of a datacenter ToR, microseconds.
DEFAULT_SWITCH_LATENCY_US = 0.45
#: Forwarding latency of the aggregation/spine tier, microseconds
#: (deeper buffers and a larger crossbar than the ToR).
DEFAULT_SPINE_LATENCY_US = 0.60


class ToRSwitch:
    """Output-queued ToR switch: per-destination egress links.

    When the switch is part of a multi-rack fabric, frames whose
    destination is not attached locally are forwarded up the
    :attr:`uplink` toward the spine instead of being dropped.
    """

    def __init__(self, sim: Simulator, name: str = "tor",
                 forwarding_latency_us: float = DEFAULT_SWITCH_LATENCY_US):
        self.sim = sim
        self.name = name
        self.forwarding_latency_us = forwarding_latency_us
        self._egress: Dict[str, Link] = {}
        #: link toward the spine switch; None for a standalone (star) ToR
        self.uplink: Optional[Link] = None
        #: SteeringController resolving service VIPs to backends, if any
        self.steering = None
        self.forwarded = 0
        self.dropped = 0

    def attach(self, node: str, egress: Link) -> None:
        """Register the link carrying traffic from the switch to ``node``."""
        self._egress[node] = egress

    def ingest(self, packet: Packet) -> None:
        """Receive a frame from any ingress port and forward it."""
        egress = self._egress.get(packet.dst)
        if (egress is None and self.steering is not None
                and self.steering.route(packet)):
            egress = self._egress.get(packet.dst)
        if egress is None:
            if self.uplink is not None:
                self.forwarded += 1
                self.sim.post(self.forwarding_latency_us,
                              self.uplink.transmit, packet)
                return
            self.dropped += 1
            return
        self.forwarded += 1
        self.sim.post(self.forwarding_latency_us, egress.transmit, packet)

    def deliver_local(self, packet: Packet) -> None:
        """Receive a frame from the spine; deliver locally or drop.

        Never re-ascends the uplink — the spine already routed on the
        destination's rack, so an unknown node here is a dead letter.
        """
        egress = self._egress.get(packet.dst)
        if egress is None:
            self.dropped += 1
            return
        self.forwarded += 1
        self.sim.post(self.forwarding_latency_us, egress.transmit, packet)


class SpineSwitch:
    """Aggregation switch routing between racks by destination node."""

    def __init__(self, sim: Simulator, name: str = "spine",
                 forwarding_latency_us: float = DEFAULT_SPINE_LATENCY_US):
        self.sim = sim
        self.name = name
        self.forwarding_latency_us = forwarding_latency_us
        self._egress: Dict[str, Link] = {}   # rack -> downlink to its ToR
        self._rack_of: Dict[str, str] = {}   # node -> rack
        #: SteeringController resolving service VIPs to backends, if any
        self.steering = None
        self.forwarded = 0
        self.dropped = 0

    def attach_rack(self, rack: str, egress: Link) -> None:
        """Register the link carrying traffic down to ``rack``'s ToR."""
        self._egress[rack] = egress

    def register(self, node: str, rack: str) -> None:
        """Record which rack ``node`` lives in (routing table entry)."""
        self._rack_of[node] = rack

    def ingest(self, packet: Packet) -> None:
        rack = self._rack_of.get(packet.dst)
        if (rack is None and self.steering is not None
                and self.steering.route(packet)):
            rack = self._rack_of.get(packet.dst)
        egress = self._egress.get(rack) if rack is not None else None
        if egress is None:
            self.dropped += 1
            return
        self.forwarded += 1
        self.sim.post(self.forwarding_latency_us, egress.transmit, packet)
