"""SteerPlane: connection-consistent fabric load balancing.

Promotes the Maglev microbench (Table 3: "Load balancer" [18]) into a
real steering layer for the two-tier fabric.  Three pieces:

* :class:`MaglevTable` — the consistent-hashing lookup table, now with
  *incremental* backend add/remove (only the changed backend's slots are
  remapped, ≤ 2/M of the table per change) and an in-place
  :meth:`~MaglevTable.replace_backend` used when a live migration
  repoints a shard to its new home without disturbing any other flow.
* :class:`SteeringController` — epoch-versioned steering state pushed to
  the ToR/spine switches.  Packets addressed to a virtual service IP
  (``svc:<name>``) are rewritten to a concrete backend; per-connection
  affinity pins keep a flow on its backend for the lifetime of an epoch,
  and the pin itself implements the *forwarding window*: packets steered
  under the old epoch keep reaching the draining backend (whose runtime
  forwards them cross-rack) until the window is flushed.
* :class:`Rebalancer` — the policy loop reacting to FaultPlane rack
  schedules: it live-migrates every shard out of a rack before the rack
  dies (advance notice) and repatriates the shards when the rack
  returns, mirroring p4containerflow's zero-loss backend migration
  behind a consistent-hashing switch LB.

The controller records every steering decision and every delivery note
in append-only ledgers; :class:`repro.check.SteeringMonitor` replays the
ledgers against the epoch snapshots to prove the safety invariants
(ownership, affinity stability, exactly-once delivery).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..sim import Simulator, spawn
from .packet import Packet

#: Prime table size for steering services — small enough that epoch
#: snapshots stay cheap, large enough for an even share over few shards.
DEFAULT_STEERING_TABLE = 251
#: How long (µs) the forwarding window stays open after a repoint:
#: old-epoch packets still in flight are tombstone-forwarded to the new
#: backend until the window is flushed.
DEFAULT_WINDOW_US = 2_000.0


def _hash(name: str, salt: str) -> int:
    return zlib.crc32(f"{salt}:{name}".encode()) & 0x7FFFFFFF


class MaglevTable:
    """The Maglev lookup table over a set of backends.

    Construction follows the paper: each backend derives a permutation
    of table slots from two hashes and slots are filled round-robin, so
    every backend owns an almost-equal share.  Backend changes after
    construction are *incremental*: only slots owned by the removed
    backend (or stolen by the added one) are remapped, bounding
    disruption at roughly ``table_size / len(backends)`` entries —
    the ≤ 2/M minimal-disruption property the tests assert.
    """

    #: Maglev uses a prime table size; 65537 in the paper, smaller here by
    #: default to keep construction fast in tests.
    def __init__(self, backends: Sequence[str], table_size: int = 2039):
        if table_size < 2:
            raise ValueError("table size must be >= 2")
        self.table_size = table_size
        self.backends: List[str] = list(backends)
        self.lookup_table: List[Optional[str]] = [None] * table_size
        if self.backends:
            self._populate()

    def _permutation(self, backend: str) -> List[int]:
        offset = _hash(backend, "offset") % self.table_size
        skip = _hash(backend, "skip") % (self.table_size - 1) + 1
        return [(offset + j * skip) % self.table_size
                for j in range(self.table_size)]

    def _populate(self) -> None:
        permutations = {b: self._permutation(b) for b in self.backends}
        next_idx = {b: 0 for b in self.backends}
        table: List[Optional[str]] = [None] * self.table_size
        filled = 0
        while filled < self.table_size:
            for backend in self.backends:
                perm = permutations[backend]
                idx = next_idx[backend]
                while idx < self.table_size and table[perm[idx]] is not None:
                    idx += 1
                if idx >= self.table_size:
                    next_idx[backend] = idx
                    continue
                table[perm[idx]] = backend
                next_idx[backend] = idx + 1
                filled += 1
                if filled == self.table_size:
                    break
        self.lookup_table = table

    def pick(self, flow_key: str) -> str:
        """Backend for a flow (consistent across table rebuilds)."""
        if not self.backends:
            raise RuntimeError("no backends")
        return self.lookup_table[_hash(flow_key, "flow") % self.table_size]

    def remove_backend(self, backend: str) -> None:
        """Drop a backend, remapping only the slots it owned.

        Freed slots are refilled round-robin: the survivor with the
        fewest slots (name as tiebreak) claims the next freed slot along
        its own Maglev permutation, preserving both the even share and
        every surviving backend's existing slots.
        """
        self.backends.remove(backend)
        if not self.backends:
            self.lookup_table = [None] * self.table_size
            return
        freed = {i for i, b in enumerate(self.lookup_table) if b == backend}
        counts = {b: 0 for b in self.backends}
        for owner in self.lookup_table:
            if owner in counts:
                counts[owner] += 1
        permutations = {b: self._permutation(b) for b in self.backends}
        cursor = {b: 0 for b in self.backends}
        while freed:
            taker = min(self.backends, key=lambda b: (counts[b], b))
            perm = permutations[taker]
            idx = cursor[taker]
            while perm[idx] not in freed:
                idx += 1
            cursor[taker] = idx + 1
            slot = perm[idx]
            freed.discard(slot)
            self.lookup_table[slot] = taker
            counts[taker] += 1

    def add_backend(self, backend: str) -> None:
        """Add a backend, stealing only its fair share of slots.

        The newcomer walks its own permutation claiming empty slots and
        slots of over-share owners until it reaches the even share; no
        other slot changes hands.
        """
        if backend in self.backends:
            raise ValueError(f"backend {backend!r} already present")
        self.backends.append(backend)
        if all(owner is None for owner in self.lookup_table):
            self._populate()
            return
        target = self.table_size // len(self.backends)
        counts = {b: 0 for b in self.backends}
        for owner in self.lookup_table:
            if owner in counts:
                counts[owner] += 1
        taken = 0
        for slot in self._permutation(backend):
            if taken >= target:
                break
            owner = self.lookup_table[slot]
            if owner is None or counts.get(owner, 0) > target:
                if owner is not None:
                    counts[owner] -= 1
                self.lookup_table[slot] = backend
                counts[backend] += 1
                taken += 1

    def replace_backend(self, old: str, new: str) -> None:
        """Rename a backend in place: zero slots change owner share.

        This is the repoint step of a live migration — every flow that
        hashed to ``old`` now reaches ``new``, and no other flow moves.
        """
        idx = self.backends.index(old)
        if new in self.backends:
            raise ValueError(f"backend {new!r} already present")
        self.backends[idx] = new
        self.lookup_table = [new if owner == old else owner
                             for owner in self.lookup_table]

    def share(self, backend: str) -> float:
        """Fraction of table slots owned by a backend."""
        return sum(1 for b in self.lookup_table if b == backend) / self.table_size


class SteeringService:
    """Per-service steering state: table, epoch, affinity pins."""

    def __init__(self, name: str, backends: Sequence[str],
                 table_size: int = DEFAULT_STEERING_TABLE,
                 window_us: float = DEFAULT_WINDOW_US):
        self.name = name
        self.vip = f"svc:{name}"
        self.table = MaglevTable(backends, table_size=table_size)
        self.epoch = 0
        self.window_us = window_us
        #: flow key -> (backend, epoch of the pin).  The pin is the
        #: forwarding window: until flushed, old-epoch flows keep being
        #: steered to the draining backend.
        self.affinity: Dict[str, Tuple[str, int]] = {}
        #: epoch -> immutable lookup-table snapshot, for owner_at().
        self.snapshots: Dict[int, Tuple[Optional[str], ...]] = {
            0: tuple(self.table.lookup_table)}


class SteeringController:
    """Epoch-versioned steering tables installed on fabric switches.

    Switches call :meth:`route` for packets addressed to a service VIP;
    runtimes call the :meth:`note_delivery` hook (via
    ``IPipeRuntime.steer_note``) when a steered request is handed to a
    live actor.  Both sides append to ledgers the SteeringMonitor
    checks.
    """

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._services: Dict[str, SteeringService] = {}
        self._by_vip: Dict[str, SteeringService] = {}
        #: (time, service, flow key, backend, epoch) per routing decision.
        self.decisions: List[Tuple[float, str, str, str, int]] = []
        #: (time, service, uid, backend, epoch, flow key) per delivery.
        self.deliveries: List[Tuple[float, str, object, str, int,
                                    Optional[str]]] = []
        self.steered = 0
        self.pinned_hits = 0
        self.epoch_changes = 0

    # -- configuration ----------------------------------------------------
    def add_service(self, name: str, backends: Sequence[str],
                    table_size: int = DEFAULT_STEERING_TABLE,
                    window_us: float = DEFAULT_WINDOW_US) -> SteeringService:
        if name in self._services:
            raise ValueError(f"steering service {name!r} already declared")
        service = SteeringService(name, backends, table_size=table_size,
                                  window_us=window_us)
        self._services[name] = service
        self._by_vip[service.vip] = service
        return service

    def service(self, name: str) -> SteeringService:
        return self._services[name]

    def services(self) -> List[str]:
        return sorted(self._services)

    def install(self, switch) -> None:
        """Point a ToR/spine switch at this controller."""
        switch.steering = self

    # -- data path --------------------------------------------------------
    def route(self, packet: Packet) -> bool:
        """Rewrite a VIP-addressed packet to its owning backend.

        Returns True when the packet was steered (``packet.dst`` now
        names a concrete node); False when the destination is not a
        known service VIP.
        """
        service = self._by_vip.get(packet.dst)
        if service is None:
            return False
        flow = packet.meta.get("steer_key")
        if flow is None:
            flow = f"{packet.src}:{packet.flow_id}"
        pinned = service.affinity.get(flow)
        if pinned is not None:
            backend, epoch = pinned
            self.pinned_hits += 1
        else:
            backend = service.table.pick(flow)
            epoch = service.epoch
            service.affinity[flow] = (backend, epoch)
        packet.dst = backend
        packet.meta["steer_service"] = service.name
        packet.meta["steer_key"] = flow
        packet.meta["steer_epoch"] = epoch
        self.steered += 1
        self.decisions.append(
            (self.sim.now, service.name, flow, backend, epoch))
        return True

    def note_delivery(self, backend: str, packet: Packet) -> None:
        """Record that a steered request reached a live actor."""
        name = packet.meta.get("steer_service")
        if name is None:
            return
        self.deliveries.append(
            (self.sim.now, name, packet.meta.get("req_uid"), backend,
             packet.meta.get("steer_epoch", -1),
             packet.meta.get("steer_key")))

    # -- epoch management -------------------------------------------------
    def owner_at(self, service: str, epoch: int,
                 flow: str) -> Optional[str]:
        """The backend owning a flow under a specific epoch's table."""
        state = self._services.get(service)
        if state is None:
            return None
        snapshot = state.snapshots.get(epoch)
        if not snapshot:
            return None
        return snapshot[_hash(flow, "flow") % len(snapshot)]

    def replace_backend(self, service: str, old: str, new: str) -> int:
        """Repoint a shard to its migrated home; returns the new epoch.

        Bumps the service epoch and snapshots the new table.  Affinity
        pins to the old backend deliberately survive — they are the
        forwarding window — until :meth:`flush` closes it.
        """
        state = self._services[service]
        state.table.replace_backend(old, new)
        state.epoch += 1
        self.epoch_changes += 1
        state.snapshots[state.epoch] = tuple(state.table.lookup_table)
        tracer = getattr(self.sim, "tracer", None)
        if tracer is not None:
            tracer.instant(f"steer:repoint:{service}", "steering",
                           track="mgmt", old=old, new=new,
                           epoch=state.epoch)
        return state.epoch

    def flush(self, service: str, old_backend: str) -> int:
        """Close the forwarding window: drop pins to the old backend."""
        state = self._services[service]
        stale = [flow for flow, (backend, _epoch)
                 in state.affinity.items() if backend == old_backend]
        for flow in stale:
            del state.affinity[flow]
        return len(stale)


# -- rebalancing policy -------------------------------------------------------

@dataclass(frozen=True)
class RebalancePolicy:
    """Knobs for the rack-evacuation and load-rebalancing policies."""

    #: Start evacuating this many µs before a scheduled rack outage.
    notice_us: float = 1_000.0
    #: Migrate shards back to their home servers when the rack returns.
    return_home: bool = True
    #: Forwarding-window length handed to each migration.
    window_us: float = DEFAULT_WINDOW_US
    #: React to PulsePlane utilization samples (LoadFeed) — migrate the
    #: hottest backend off an overloaded server on *sustained* skew.
    on_load: bool = False
    #: Absolute utilization a backend's server must reach to count hot.
    util_high: float = 0.75
    #: ...and exceed the fleet mean by at least this much (skew, not
    #: uniform overload, justifies moving work around).
    skew_min: float = 0.25
    #: Hysteresis: consecutive hot samples required before migrating.
    sustain_periods: int = 3
    #: Cooldown between load-driven moves (µs) — one migration must get
    #: the chance to take effect before the next is considered.
    cooldown_us: float = 5_000.0


@dataclass
class MovableBackend:
    """How to move one steered backend: its actors and state hooks."""

    actors: Tuple[str, ...]
    detach: Optional[Callable[[], object]] = None
    attach: Optional[Callable[[object, object], None]] = None


class Rebalancer:
    """Evacuate steered backends ahead of rack outages; repatriate after.

    Reads the FaultPlane's rack schedule at construction and arms an
    evacuation ``notice_us`` before each outage; subscribes to rack
    up/down events for repatriation (and as a late-notice fallback).
    With ``policy.on_load`` set it additionally reacts to PulsePlane
    utilization samples (:meth:`on_load_sample`, fed by
    :class:`repro.obs.pulse.LoadFeed`): a backend whose server stays
    both hot and skewed above the fleet mean for ``sustain_periods``
    consecutive samples is live-migrated to the least-loaded spare,
    subject to a ``cooldown_us`` gap between moves.
    """

    def __init__(self, sim: Simulator, controller: SteeringController,
                 migrator, policy: RebalancePolicy, service: str,
                 backends: Dict[str, MovableBackend],
                 runtimes: Dict[str, object],
                 rack_of: Callable[[str], Optional[str]],
                 fault_plane=None) -> None:
        self.sim = sim
        self.controller = controller
        self.migrator = migrator
        self.policy = policy
        self.service = service
        self.backends = backends
        self.runtimes = runtimes
        self.rack_of = rack_of
        #: home server -> server currently hosting that backend.
        self.placement: Dict[str, str] = {home: home for home in backends}
        #: (time, service, home, src, dst) per completed move.
        self.moves: List[Tuple[float, str, str, str, str]] = []
        self.interrupted = 0
        self._moving: set = set()
        #: load-trigger state: per-home consecutive hot-sample streaks.
        self.load_moves = 0
        self._hot_streak: Dict[str, int] = {}
        self._last_load_move = -float("inf")
        if fault_plane is not None:
            for rack, at_us, _duration in fault_plane.rack_schedule():
                when = max(self.sim.now, at_us - policy.notice_us)
                self.sim.call_at(when, self._evacuate, rack)
            fault_plane.rack_listeners.append(self._on_rack_event)

    # -- event plumbing ---------------------------------------------------
    def _on_rack_event(self, event: str, rack: str) -> None:
        if event == "down":
            # Late-notice fallback: anything still in the rack leaves now.
            self._evacuate(rack)
        elif event == "up" and self.policy.return_home:
            self._repatriate(rack)

    def _evacuate(self, rack: str) -> None:
        for home in sorted(self.placement):
            current = self.placement[home]
            if home in self._moving or self.rack_of(current) != rack:
                continue
            dst = self._pick_destination(exclude_rack=rack)
            if dst is None:
                continue
            self._launch(home, current, dst)

    def _repatriate(self, rack: str) -> None:
        for home in sorted(self.placement):
            current = self.placement[home]
            if (home in self._moving or current == home
                    or self.rack_of(home) != rack):
                continue
            self._launch(home, current, home)

    # -- load-driven migration (LoadFeed entry point) ---------------------
    def on_load_sample(self, now: float, utils: Dict[str, float]
                       ) -> Optional[Tuple[str, str]]:
        """One pulse of per-server utilization; maybe launch a move.

        ``utils`` maps server name -> mean NIC-core utilization over the
        last sample period (every candidate server, not only current
        backends).  Returns ``(home, dst)`` when a migration launched,
        None otherwise.  Hysteresis (``sustain_periods`` consecutive hot
        samples) filters transient spikes; ``cooldown_us`` spaces moves
        so one migration's effect is measured before the next fires.
        """
        policy = self.policy
        if not policy.on_load or len(utils) < 2:
            return None
        mean = sum(utils.values()) / len(utils)
        for home in sorted(self.placement):
            util = utils.get(self.placement[home])
            if util is None or home in self._moving:
                continue
            if util >= policy.util_high and util - mean >= policy.skew_min:
                self._hot_streak[home] = self._hot_streak.get(home, 0) + 1
            else:
                self._hot_streak[home] = 0
        if now - self._last_load_move < policy.cooldown_us:
            return None
        sustained = [home for home in sorted(self.placement)
                     if self._hot_streak.get(home, 0)
                     >= max(policy.sustain_periods, 1)
                     and home not in self._moving]
        # hottest first; one move per sample keeps the loop observable
        sustained.sort(
            key=lambda h: (-utils.get(self.placement[h], 0.0), h))
        for home in sustained:
            src = self.placement[home]
            dst = self._pick_load_destination(utils, exclude=src)
            if dst is None:
                continue
            self._hot_streak[home] = 0
            self._last_load_move = now
            self.load_moves += 1
            tracer = getattr(self.sim, "tracer", None)
            if tracer is not None:
                tracer.instant(f"rebalance:load:{home}", "steering",
                               track="mgmt", src=src, dst=dst,
                               util=utils.get(src))
            self._launch(home, src, dst)
            return (home, dst)
        return None

    def _pick_load_destination(self, utils: Dict[str, float],
                               exclude: str) -> Optional[str]:
        """Least-loaded running server hosting no backend already."""
        hosting = set(self.placement.values())
        best: Optional[str] = None
        best_util = float("inf")
        for name in sorted(self.runtimes):
            if name == exclude or name in hosting:
                continue
            runtime = self.runtimes[name]
            if not getattr(runtime, "_running", True):
                continue
            util = utils.get(name, 0.0)
            if util < best_util:
                best, best_util = name, util
        return best

    def _pick_destination(self, exclude_rack: str) -> Optional[str]:
        hosting = set(self.placement.values())
        for name in sorted(self.runtimes):
            runtime = self.runtimes[name]
            if (name in hosting or self.rack_of(name) == exclude_rack
                    or not getattr(runtime, "_running", True)):
                continue
            return name
        return None

    def _launch(self, home: str, src: str, dst: str) -> None:
        self._moving.add(home)
        self.placement[home] = dst
        spawn(self.sim, self._move(home, src, dst),
              name=f"rebalance:{home}->{dst}")

    def _move(self, home: str, src: str, dst: str):
        from ..core.migration import MigrationInterrupted
        movable = self.backends[home]
        try:
            yield from self.migrator.migrate(
                self.runtimes[src], self.runtimes[dst],
                list(movable.actors), service=self.service,
                detach=movable.detach, attach=movable.attach,
                window_us=self.policy.window_us)
        except MigrationInterrupted:
            # Destination died mid-move; shard is still safe at the
            # source (checkpoint retained) — put the placement back so a
            # later evacuation retries with a different destination.
            self.interrupted += 1
            self.placement[home] = src
            return
        finally:
            self._moving.discard(home)
        self.moves.append((self.sim.now, self.service, home, src, dst))
