"""Sweep execution: parallel experiment grids with cached, deterministic
results.

* :class:`ParallelSweep` — fan an experiment grid out to a process pool,
  merge deterministically by point key (bit-identical to a serial run);
* :class:`ResultCache` — content-addressed on-disk cache keyed by
  (code fingerprint, config hash) so re-running figure scripts only
  recomputes dirty points;
* :class:`RackShardExecutor` — parallel-in-time execution: one
  simulator per rack advancing in conservative lookahead windows,
  bit-identical to the serial run (see :mod:`repro.exec.shard`);
* :mod:`repro.exec.grids` — the paper's figures expressed as grids;
* :mod:`repro.exec.bench` — kernel + sweep benchmarks emitting
  ``BENCH_sweep.json``.
"""

from .cache import DEFAULT_CACHE_DIR, ResultCache, canonical, code_fingerprint
from .shard import RackShardExecutor, ShardPartial, run_sharded
from .sweep import (ParallelSweep, SweepPoint, SweepReport,
                    result_fingerprint, run_grid)
from . import grids

__all__ = [
    "DEFAULT_CACHE_DIR",
    "RackShardExecutor",
    "ShardPartial",
    "run_sharded",
    "ResultCache",
    "canonical",
    "code_fingerprint",
    "ParallelSweep",
    "SweepPoint",
    "SweepReport",
    "result_fingerprint",
    "run_grid",
    "grids",
]
