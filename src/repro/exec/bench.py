"""Perf trajectory: kernel microbenchmarks + sweep executor benchmark.

``python -m repro bench`` runs this module and emits ``BENCH_sweep.json``
— the committed perf baseline format CI regresses against:

* **kernel** — events/sec of the DES kernel on five workload shapes
  (timer chain via ``call_in``, handle-free ``post`` chain, a
  generator-process Timeout loop, a dense many-timer population that
  exercises the calendar-queue event wheel against the forced-``heapq``
  path, and open-loop Poisson arrival generation with and without
  lattice batching), for the current kernel with and without handle
  pooling, and for a reference copy of the *seed* kernel (pre-fast-path
  ``heapq`` loop with per-event allocation) kept here so the speedup is
  measured, not remembered.  Both pooling numbers are recorded because
  pooling's once-clear win on the chain shape dissolved into host
  variance after the kernel fast path landed (the ordering now flips
  between runs on the reference host) — which is why it defaults off
  (docs/PERFORMANCE.md);
* **sweep** — wall-clock of a Figure-16-style grid through
  :class:`~repro.exec.sweep.ParallelSweep` serially, with a process
  pool, and from a warm result cache, asserting along the way that all
  three produce bit-identical results (per-point pickle fingerprints,
  see :func:`~repro.exec.sweep.result_fingerprint`).  On a host without
  ≥2 effective cores the pool comparison is meaningless, so it is
  skipped and annotated (``pool_speedup: null`` + ``pool_note``;
  ``effective_jobs`` is always stamped);
* **shard** — wall-clock of the ``multi-rack-rkv`` scenario executed
  serially vs through the parallel-in-time
  :class:`~repro.exec.shard.RackShardExecutor`, asserting the result
  fingerprints match.  On a host with ≥2 effective cores a third leg
  forks one worker per rack (``processes=len(racks)``) and records the
  real multi-core ``proc_speedup`` — the ROADMAP's "demonstrate the
  shard speedup on real hardware" number.  Wall-clock only (never
  gated): in-process shards on a single core measure coordination
  overhead, not speedup.

Regression policy: ``check_regression`` fails when any ``*_eps`` metric
in any section drops more than 30% below the committed baseline;
wall-clock seconds and speedup ratios never gate.  Sections whose
``effective_jobs`` differ between bench and baseline are skipped
entirely — a 1-core row must never be compared against a 4-core row —
which is why ``meta.runner_cores`` stamps the core count into every
emitted file.

Each section is guarded: if a benchmark raises, the section becomes
``{"error": ...}`` and the remaining sections still run, so
``BENCH_sweep.json`` is always written (CI uploads it ``if: always()``)
and the failure is gated by ``check_regression`` instead of a stack
trace with no artifact.
"""

from __future__ import annotations

import heapq
import json
import os
import platform
import sys
import tempfile
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..sim import Simulator, Timeout, spawn
from .cache import ResultCache, code_fingerprint
from .grids import fig16_grid
from .sweep import ParallelSweep, result_fingerprint

#: Events per microbenchmark run.
_CHAIN_EVENTS = 150_000
_PROCESS_EVENTS = 60_000
_CANCEL_EVENTS = 40_000
_DENSE_TIMERS = 32_768
_DENSE_EVENTS = 120_000
_ARRIVAL_EVENTS = 80_000
_REPEATS = 5

REGRESSION_THRESHOLD = 0.30


# -- reference copy of the seed kernel ----------------------------------------
class SeedSimulator:
    """The seed's DES loop, verbatim in behaviour: a ``heapq`` of
    ``(when, seq, handle)`` with per-event handle allocation, lazy cancel
    with no compaction, and an O(n) ``pending()`` scan.  Kept only as
    the measured baseline for the kernel fast path."""

    class Handle:
        __slots__ = ("when", "_fn", "_args", "cancelled", "fired")

        def __init__(self, when, fn, args):
            self.when = when
            self._fn = fn
            self._args = args
            self.cancelled = False
            self.fired = False

        def cancel(self):
            self.cancelled = True

        def fire(self):
            if not self.cancelled:
                self.fired = True
                self._fn(*self._args)

    def __init__(self):
        self._now = 0.0
        self._heap: List = []
        self._seq = 0

    @property
    def now(self):
        return self._now

    def call_at(self, when, fn, *args):
        handle = SeedSimulator.Handle(when, fn, args)
        self._seq += 1
        heapq.heappush(self._heap, (when, self._seq, handle))
        return handle

    def call_in(self, delay, fn, *args):
        return self.call_at(self._now + delay, fn, *args)

    def pending(self):
        return sum(1 for _, _, h in self._heap if not h.cancelled)

    def run(self, until=None):
        while self._heap:
            when, _seq, handle = self._heap[0]
            if until is not None and when > until:
                self._now = until
                return self._now
            heapq.heappop(self._heap)
            if handle.cancelled:
                continue
            self._now = when
            handle.fire()
        if until is not None and until > self._now:
            self._now = until
        return self._now


# -- kernel microbenchmarks ----------------------------------------------------

def _best_of(fn: Callable[[], float], repeats: int = _REPEATS) -> float:
    return max(fn() for _ in range(repeats))


def _chain_eps(make_sim: Callable[[], Any], schedule: str = "call_in",
               events: int = _CHAIN_EVENTS) -> float:
    """Self-rescheduling timer chain; events/sec."""
    def once() -> float:
        sim = make_sim()
        post = getattr(sim, schedule)
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < events:
                post(1.0, tick)

        post(1.0, tick)
        t0 = time.perf_counter()
        sim.run()
        return events / (time.perf_counter() - t0)

    return _best_of(once)


def _process_eps(events: int = _PROCESS_EVENTS) -> float:
    """Generator-process Timeout loop (the experiment hot path)."""
    def once() -> float:
        sim = Simulator()

        def proc():
            for _ in range(events):
                yield Timeout(1.0)

        spawn(sim, proc())
        t0 = time.perf_counter()
        sim.run()
        return events / (time.perf_counter() - t0)

    return _best_of(once)


def _cancel_heavy_eps(make_sim: Callable[[], Any],
                      events: int = _CANCEL_EVENTS) -> Tuple[float, int]:
    """Watchdog pattern: every event arms a far-future timer and cancels
    it.  Returns (events/sec, peak heap length) — the seed kernel keeps
    every tombstone; the compacting kernel bounds the heap."""
    def once() -> Tuple[float, int]:
        sim = make_sim()
        count = [0]
        peak = [0]

        def work():
            count[0] += 1
            watchdog = sim.call_in(1e9, _noop)
            watchdog.cancel()
            heap_len = len(sim._heap)
            if heap_len > peak[0]:
                peak[0] = heap_len
            if count[0] < events:
                sim.call_in(1.0, work)

        sim.call_in(1.0, work)
        t0 = time.perf_counter()
        sim.run()
        return 2 * events / (time.perf_counter() - t0), peak[0]

    best = (0.0, 0)
    for _ in range(_REPEATS):
        eps, peak = once()
        if eps > best[0]:
            best = (eps, peak)
    return best


def _noop():
    pass


def _dense_eps(make_sim: Callable[[], Any], timers: int = _DENSE_TIMERS,
               events: int = _DENSE_EVENTS) -> float:
    """A dense population of self-rescheduling timers with spread
    periods — thousands of live events at all times, the shape the
    calendar-queue event wheel exists for (an open-loop fleet against a
    fabric looks like this).  Events/sec."""
    def once() -> float:
        sim = make_sim()
        remaining = [events]
        post = sim.post

        def make_tick(period):
            def tick():
                remaining[0] -= 1
                if remaining[0] > 0:
                    post(period, tick)
            return tick

        for i in range(timers):
            period = 0.5 + (i % 1024) * 0.001
            post(period, make_tick(period))
        t0 = time.perf_counter()
        sim.run()
        return events / (time.perf_counter() - t0)

    return _best_of(once)


def _arrival_eps(lattice_us: float, events: int = _ARRIVAL_EVENTS) -> float:
    """Open-loop Poisson arrival generation into a null sink: the
    bookkeeping cost of producing the packet schedule itself.  With
    ``lattice_us > 0`` each window's arrivals are drawn and scheduled in
    one batch (same timestamps, same RNG order)."""
    from ..net import OpenLoopGenerator
    from ..sim import Rng

    def once() -> float:
        sim = Simulator()
        gen = OpenLoopGenerator(sim, send=_drop_packet, src="c", dst="s",
                                rate_mpps=1.0, size=64, rng=Rng(7),
                                lattice_us=lattice_us)
        t0 = time.perf_counter()
        sim.run(until=float(events))
        elapsed = time.perf_counter() - t0
        gen.stop()
        return gen.sent / elapsed

    return _best_of(once)


def _drop_packet(packet) -> None:
    pass


def kernel_bench() -> Dict[str, float]:
    seed_chain = _chain_eps(SeedSimulator)
    chain_pooled = _chain_eps(lambda: Simulator(pooling=True))
    chain_unpooled = _chain_eps(lambda: Simulator(pooling=False))
    post_chain = _chain_eps(Simulator, schedule="post")
    seed_cancel, seed_peak = _cancel_heavy_eps(SeedSimulator)
    cancel, peak = _cancel_heavy_eps(Simulator)
    dense_wheel = _dense_eps(Simulator)                  # auto -> wheel
    dense_heap = _dense_eps(lambda: Simulator(queue="heap"))
    arrivals_lattice = _arrival_eps(lattice_us=64.0)
    arrivals_perpkt = _arrival_eps(lattice_us=0.0)
    return {
        "seed_chain_eps": seed_chain,
        "chain_pooled_eps": chain_pooled,
        "chain_unpooled_eps": chain_unpooled,
        "post_chain_eps": post_chain,
        "process_timeout_eps": _process_eps(),
        "cancel_heavy_eps": cancel,
        "cancel_heavy_seed_eps": seed_cancel,
        "cancel_heavy_peak_heap": float(peak),
        "cancel_heavy_seed_peak_heap": float(seed_peak),
        "dense_wheel_eps": dense_wheel,
        "dense_heap_eps": dense_heap,
        "lattice_arrivals_eps": arrivals_lattice,
        "perpacket_arrivals_eps": arrivals_perpkt,
        "speedup_post_vs_seed": post_chain / seed_chain,
        "speedup_cancel_vs_seed": cancel / seed_cancel,
        "speedup_wheel_vs_heap": dense_wheel / dense_heap,
        "speedup_lattice_vs_perpacket": arrivals_lattice / arrivals_perpkt,
    }


# -- sweep benchmark -----------------------------------------------------------

def _bench_grid(quick: bool):
    """A Figure-16-style grid: policies x loads at one dispersion."""
    loads = (0.5, 0.9) if quick else (0.3, 0.5, 0.7, 0.9)
    duration = 12_000.0 if quick else 30_000.0
    return fig16_grid(dispersions=("high",), loads=loads,
                      duration_us=duration)


def effective_parallelism(pool: int) -> int:
    """How many of ``pool`` workers can actually run concurrently here."""
    return max(1, min(pool, os.cpu_count() or 1))


def sweep_bench(pool: int = 4, quick: bool = True,
                cache_dir: Optional[str] = None) -> Dict[str, Any]:
    """Serial vs pool-N vs warm-cache wall clock on one grid.

    Asserts that all three paths produce bit-identical (pickle-equal)
    results; raises RuntimeError otherwise.  The pool executor is reused
    for the cold and warm cache passes, so worker startup is paid once.
    On a host with fewer than 2 effective cores the pool timing would
    measure oversubscription, not parallelism — ``pool_speedup`` is then
    ``None`` with a ``pool_note`` explaining why, and the cold-cache
    pass runs serially (the equivalence assertions still hold).
    """
    points = _bench_grid(quick)
    effective_jobs = effective_parallelism(pool)
    pool_jobs = pool if effective_jobs >= 2 else 1

    t0 = time.perf_counter()
    serial = ParallelSweep(jobs=1).run(points)
    serial_s = time.perf_counter() - t0

    with tempfile.TemporaryDirectory() as tmp:
        root = cache_dir or os.path.join(tmp, "cache")
        with ParallelSweep(jobs=pool_jobs) as executor:
            executor.cache = ResultCache(root)
            t0 = time.perf_counter()
            pooled = executor.run(points)
            pool_s = time.perf_counter() - t0

            executor.cache = ResultCache(root)
            t0 = time.perf_counter()
            cached = executor.run(points)
            cached_s = time.perf_counter() - t0

        serial_fp = result_fingerprint(serial.results)
        if (result_fingerprint(pooled.results) != serial_fp
                or list(pooled.results) != list(serial.results)):
            raise RuntimeError("pool-N sweep diverged from the serial run")
        if (result_fingerprint(cached.results) != serial_fp
                or list(cached.results) != list(serial.results)):
            raise RuntimeError("cached replay diverged from the serial run")

    out: Dict[str, Any] = {
        "grid": "fig16-high-dispersion",
        "points": serial.points,
        "pool": pool,
        "effective_jobs": effective_jobs,
        "serial_s": serial_s,
        "pool_s": pool_s,
        "cached_s": cached_s,
        "pool_speedup": serial_s / pool_s if pool_s > 0 else 0.0,
        "cached_speedup": serial_s / cached_s if cached_s > 0 else 0.0,
        "cache_hit_rate": cached.hit_rate,
        "identical": True,
    }
    if effective_jobs < 2:
        out["pool_speedup"] = None
        out["pool_note"] = (f"host has {effective_jobs} effective core(s); "
                            f"pool comparison skipped")
    return out


# -- shard benchmark -----------------------------------------------------------

def shard_bench(spec_name: str = "multi-rack-rkv",
                duration_us: float = 5_000.0) -> Dict[str, Any]:
    """Serial vs rack-sharded wall clock on one multi-rack scenario.

    Asserts the fingerprints match (the executor's contract).  Pure
    wall-clock — never gated: with in-process shards on a single core
    this measures the conservative-window coordination overhead; real
    speedup needs one core per rack, so on a host with ≥2 effective
    cores a third leg forks one worker per rack and records
    ``proc_speedup`` (``None`` + ``proc_note`` otherwise)."""
    from dataclasses import replace
    from ..scenario import load_shipped, run_scenario
    from .shard import RackShardExecutor

    spec = load_shipped(spec_name)
    serial_spec = replace(spec, execution=replace(
        spec.execution, shards="none",
        fault_streams=spec.execution.resolved_fault_streams()
        if spec.execution.shards != "none" else "per-component"))

    t0 = time.perf_counter()
    serial = run_scenario(serial_spec, duration_us=duration_us)
    serial_s = time.perf_counter() - t0

    executor = RackShardExecutor(spec, duration_us=duration_us)
    t0 = time.perf_counter()
    sharded = executor.run()
    shard_s = time.perf_counter() - t0

    match = serial.fingerprint() == sharded.fingerprint()
    if not match:
        raise RuntimeError(
            f"sharded {spec_name} diverged from the serial run")

    racks = len(spec.racks)
    effective_jobs = effective_parallelism(racks)
    out: Dict[str, Any] = {
        "spec": spec_name,
        "racks": racks,
        "duration_us": duration_us,
        "effective_jobs": effective_jobs,
        "serial_s": serial_s,
        "shard_s": shard_s,
        "shard_speedup": serial_s / shard_s if shard_s > 0 else 0.0,
        "rounds": executor.rounds,
        "transfers": executor.transfers,
        "match": match,
        "proc_speedup": None,
    }
    if effective_jobs >= 2:
        proc_exec = RackShardExecutor(spec, duration_us=duration_us,
                                      processes=racks)
        t0 = time.perf_counter()
        proc = proc_exec.run()
        proc_s = time.perf_counter() - t0
        if serial.fingerprint() != proc.fingerprint():
            raise RuntimeError(
                f"process-sharded {spec_name} diverged from the serial run")
        out["proc_s"] = proc_s
        out["proc_speedup"] = serial_s / proc_s if proc_s > 0 else 0.0
    else:
        out["proc_note"] = (f"host has {effective_jobs} effective core(s); "
                            f"process-shard comparison skipped")
    return out


# -- figure wall-clock ---------------------------------------------------------

def figure_wallclock(quick: bool = True, jobs: int = 1) -> Dict[str, float]:
    """Wall-clock seconds per figure grid through the executor."""
    from .grids import GRIDS
    out: Dict[str, float] = {}
    for name in ("fig5", "fig16"):
        points = GRIDS[name](quick=quick)
        t0 = time.perf_counter()
        ParallelSweep(jobs=jobs).run(points)
        out[name] = time.perf_counter() - t0
    return out


# -- assembly / regression gate ------------------------------------------------

def _guarded(fn: Callable[[], Dict[str, Any]]) -> Dict[str, Any]:
    """Run one bench section; on failure stamp the error instead of
    aborting the whole bench, so the output file is always written."""
    try:
        return fn()
    except Exception as exc:
        return {"error": f"{type(exc).__name__}: {exc}"}


def _tenancy_available() -> bool:
    """True when this build carries the TenantPlane (the multi-tenant
    spec grammar + hierarchical DRR).  Stamped into ``meta`` so a bench
    file records which capability generation produced it; baselines
    written before the TenantPlane simply lack the key, and
    ``check_regression`` skips the whole ``meta`` section, so the flag
    can never gate."""
    try:
        from ..scenario import TenantSpec  # noqa: F401
    except ImportError:
        return False
    return True


def run_bench(pool: int = 4, quick: bool = True,
              figures: bool = False) -> Dict[str, Any]:
    bench: Dict[str, Any] = {
        "meta": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
            "runner_cores": os.cpu_count() or 1,
            "code_fingerprint": code_fingerprint()[:16],
            "quick": quick,
            "tenancy": _tenancy_available(),
        },
        "kernel": _guarded(kernel_bench),
        "sweep": _guarded(lambda: sweep_bench(pool=pool, quick=quick)),
        "shard": _guarded(shard_bench),
    }
    if figures:
        bench["figures_wall_s"] = _guarded(
            lambda: figure_wallclock(quick=quick, jobs=pool))
    return bench


def write_bench(bench: Dict[str, Any], path: str) -> None:
    with open(path, "w") as fh:
        json.dump(bench, fh, indent=2, sort_keys=True)
        fh.write("\n")


def check_regression(bench: Dict[str, Any], baseline: Dict[str, Any],
                     threshold: float = REGRESSION_THRESHOLD) -> List[str]:
    """Compare events/sec metrics against a committed baseline.

    Returns a list of failure strings (empty == pass).  Every ``*_eps``
    metric in every baseline section gates; wall-clock seconds and
    speedup ratios vary too much across hosts.  A section that errored
    (``{"error": ...}``) is one failure.  A section whose
    ``effective_jobs`` differs from the baseline's ran on a different
    core count and is skipped — its numbers are not comparable.
    """
    failures = []
    for section, base_metrics in baseline.items():
        if section == "meta" or not isinstance(base_metrics, dict):
            continue
        new_metrics = bench.get(section, {})
        if isinstance(new_metrics, dict) and "error" in new_metrics:
            failures.append(f"{section}: errored: {new_metrics['error']}")
            continue
        base_jobs = base_metrics.get("effective_jobs")
        if (base_jobs is not None
                and new_metrics.get("effective_jobs") != base_jobs):
            continue
        for name, base_value in base_metrics.items():
            if not name.endswith("_eps") \
                    or not isinstance(base_value, (int, float)):
                continue
            new_value = new_metrics.get(name)
            if new_value is None:
                failures.append(f"{section}.{name}: missing from new bench")
                continue
            floor = base_value * (1.0 - threshold)
            if new_value < floor:
                failures.append(
                    f"{section}.{name}: {new_value:,.0f} ev/s is "
                    f"{1 - new_value / base_value:.0%} below baseline "
                    f"{base_value:,.0f} (allowed {threshold:.0%})")
    return failures
