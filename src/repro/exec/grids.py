"""Experiment grids: the paper's figures expressed as sweep points.

Each builder turns one figure (or study) into a list of independent
:class:`~repro.exec.sweep.SweepPoint` cells ready for
:class:`~repro.exec.sweep.ParallelSweep`.  Experiment modules are
imported lazily inside the builders so this module can be imported from
anywhere (including pool workers unpickling point functions) without
dragging the whole experiment surface in at import time.

Point functions must return picklable values; runners whose natural
return value holds live simulator state (the chaos studies' ChaosReport
carries a TracePlane) get a thin module-level wrapper here that reduces
the result to plain data — which is also exactly what the determinism
fingerprint tests compare.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from .sweep import SweepPoint

#: Figure 13 per-size client counts (64B traffic needs more clients to
#: reach max throughput, mirroring cli._fig13).
_FIG13_CLIENTS = {64: 192, 256: 96, 512: 96, 1024: 96}


# -- picklable point wrappers -------------------------------------------------

def chaos_point(workload: str, **kwargs) -> Dict:
    """Run one chaos scenario; reduce the report to plain data.

    The returned dict includes the deterministic-replay
    ``telemetry_fingerprint`` (fault schedule + recovery telemetry), the
    field the sweep determinism tests compare byte-for-byte.
    """
    from ..experiments.chaos_study import RUNNERS
    report = RUNNERS[workload](**kwargs)
    return {
        "workload": workload,
        "seed": report.seed,
        "requests": report.requests,
        "answered": report.answered,
        "lost": report.lost,
        "client_retransmits": report.client_retransmits,
        "duplicate_replies": report.duplicate_replies,
        "duration_us": report.duration_us,
        "faults_injected": dict(report.faults_injected),
        "invariants": dict(report.invariants),
        "ok": report.ok,
        "stage_latencies": dict(report.stage_latencies),
        "fingerprint": report.telemetry_fingerprint(),
    }


def fig18_point(**kwargs) -> List:
    """Figure 18 migration breakdown as picklable rows."""
    from ..experiments.migration_study import (breakdown_rows,
                                               run_migration_breakdown)
    return breakdown_rows(run_migration_breakdown(**kwargs))


# -- grid builders ------------------------------------------------------------

def fig5_grid(quick: bool = False,
              sizes: Sequence[int] = (64, 512, 1024, 1500),
              cores: Sequence[int] = (6, 12),
              duration_us: Optional[float] = None) -> List[SweepPoint]:
    from ..experiments.characterization import traffic_manager_experiment
    if duration_us is None:
        duration_us = 8_000.0 if quick else 25_000.0
    return [
        SweepPoint(("fig5", size, n), traffic_manager_experiment,
                   dict(frame_bytes=size, cores=n, duration_us=duration_us))
        for size in sizes for n in cores
    ]


def fig13_grid(quick: bool = False,
               sizes: Optional[Sequence[int]] = None,
               duration_us: Optional[float] = None) -> List[SweepPoint]:
    from ..experiments.applications import run_app
    if duration_us is None:
        duration_us = 8_000.0 if quick else 15_000.0
    if sizes is None:
        sizes = (512,) if quick else (64, 256, 512, 1024)
    return [
        SweepPoint(("fig13", system, app, size), run_app,
                   dict(system=system, app=app, packet_size=size,
                        clients=_FIG13_CLIENTS[size], duration_us=duration_us))
        for size in sizes
        for system in ("dpdk", "ipipe")
        for app in ("rta", "dt", "rkv")
    ]


def fig14_grid(quick: bool = False,
               client_counts: Optional[Sequence[int]] = None,
               duration_us: Optional[float] = None) -> List[SweepPoint]:
    from ..experiments.applications import run_app
    if duration_us is None:
        duration_us = 8_000.0 if quick else 12_000.0
    if client_counts is None:
        client_counts = (2, 16) if quick else (2, 8, 24, 64)
    return [
        SweepPoint(("fig14", system, app, clients), run_app,
                   dict(system=system, app=app, packet_size=512,
                        clients=clients, duration_us=duration_us))
        for system in ("dpdk", "ipipe")
        for app in ("rta", "dt", "rkv")
        for clients in client_counts
    ]


def fig16_grid(quick: bool = False,
               dispersions: Sequence[str] = ("low", "high"),
               loads: Optional[Sequence[float]] = None,
               policies: Optional[Sequence[str]] = None,
               duration_us: Optional[float] = None,
               seed: int = 1) -> List[SweepPoint]:
    from ..experiments.scheduler_study import POLICIES, run_point
    from ..nic import LIQUIDIO_CN2350
    if duration_us is None:
        duration_us = 30_000.0 if quick else 100_000.0
    if loads is None:
        loads = (0.5, 0.9) if quick else (0.3, 0.5, 0.7, 0.9)
    if policies is None:
        policies = POLICIES
    return [
        SweepPoint(("fig16", dispersion, policy, load), run_point,
                   dict(spec=LIQUIDIO_CN2350, policy=policy,
                        dispersion=dispersion, load=load,
                        duration_us=duration_us, seed=seed))
        for dispersion in dispersions
        for policy in policies
        for load in loads
    ]


def fig17_grid(quick: bool = False,
               load_fractions: Sequence[float] = (0.5, 1.0),
               duration_us: Optional[float] = None,
               base_clients: int = 16) -> List[SweepPoint]:
    from ..experiments.applications import run_app
    if duration_us is None:
        duration_us = 8_000.0 if quick else 15_000.0
    return [
        SweepPoint(("fig17", system, frac), run_app,
                   dict(system=system, app="rkv", packet_size=512,
                        clients=max(1, int(base_clients * frac)),
                        duration_us=duration_us))
        for frac in load_fractions
        for system in ("dpdk", "ipipe-hostonly")
    ]


def fig18_grid(quick: bool = False) -> List[SweepPoint]:
    warmup = 2_000.0 if quick else 5_000.0
    return [SweepPoint(("fig18",), fig18_point, dict(warmup_us=warmup))]


def chaos_grid(quick: bool = False,
               workloads: Sequence[str] = ("rkv", "dt", "rta"),
               seeds: Sequence[int] = (42,),
               trace: bool = False,
               duration_us: Optional[float] = None) -> List[SweepPoint]:
    points = []
    for workload in workloads:
        for seed in seeds:
            kwargs: Dict = {"seed": seed, "trace": trace}
            if duration_us is not None:
                kwargs["duration_us"] = duration_us
            elif quick:
                kwargs["duration_us"] = 25_000.0
            points.append(SweepPoint(("chaos", workload, seed),
                                     chaos_point,
                                     dict(workload=workload, **kwargs)))
    return points


GRIDS = {
    "fig5": fig5_grid,
    "fig13": fig13_grid,
    "fig14": fig14_grid,
    "fig16": fig16_grid,
    "fig17": fig17_grid,
    "fig18": fig18_grid,
    "chaos": chaos_grid,
}
