"""Experiment grids: the paper's figures expressed as sweep points.

Each builder turns one figure (or study) into a list of independent
:class:`~repro.exec.sweep.SweepPoint` cells ready for
:class:`~repro.exec.sweep.ParallelSweep`.  Experiment modules are
imported lazily inside the builders so this module can be imported from
anywhere (including pool workers unpickling point functions) without
dragging the whole experiment surface in at import time.

Point functions must return picklable values; runners whose natural
return value holds live simulator state (the chaos studies' ChaosReport
carries a TracePlane) get a thin module-level wrapper here that reduces
the result to plain data — which is also exactly what the determinism
fingerprint tests compare.
"""

from __future__ import annotations

from dataclasses import dataclass
from importlib import import_module
from itertools import product
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .sweep import SweepPoint

#: Figure 13 per-size client counts (64B traffic needs more clients to
#: reach max throughput, mirroring cli._fig13).
_FIG13_CLIENTS = {64: 192, 256: 96, 512: 96, 1024: 96}


# -- picklable point wrappers -------------------------------------------------

def chaos_point(workload: str, **kwargs) -> Dict:
    """Run one chaos scenario; reduce the report to plain data.

    The returned dict includes the deterministic-replay
    ``telemetry_fingerprint`` (fault schedule + recovery telemetry), the
    field the sweep determinism tests compare byte-for-byte.
    """
    from ..experiments.chaos_study import RUNNERS
    return RUNNERS[workload](**kwargs).to_record()


def fig18_point(**kwargs) -> List:
    """Figure 18 migration breakdown as picklable rows."""
    from ..experiments.migration_study import (breakdown_rows,
                                               run_migration_breakdown)
    return breakdown_rows(run_migration_breakdown(**kwargs))


# -- the spec-driven grid constructor -----------------------------------------

@dataclass(frozen=True)
class GridDef:
    """One figure grid as data: point function, axes, per-cell kwargs.

    ``axes`` maps (quick, overrides) to ordered ``(name, values)`` pairs;
    cells iterate the cartesian product with the first axis outermost —
    the loop order of the original hand-written builders.  ``key_order``
    permutes axis names into the SweepPoint key tuple when the original
    key order differed from the loop order.  ``cell`` maps one cell's
    axis values to the exact kwargs dict the point function receives.
    """

    name: str
    resolve: Callable[[], Callable]
    axes: Callable[[bool, Dict], List[Tuple[str, Sequence]]]
    cell: Callable[[Dict, bool, Dict], Dict]
    key_order: Optional[Tuple[str, ...]] = None


def build_grid(name: str, quick: bool = False, **overrides) -> List[SweepPoint]:
    """Materialise one grid definition into SweepPoint cells."""
    gd = GRID_DEFS[name]
    fn = gd.resolve()
    axes = gd.axes(quick, overrides)
    axis_names = [axis for axis, _ in axes]
    key_names = list(gd.key_order or axis_names)
    points = []
    for combo in product(*[values for _, values in axes]):
        cell = dict(zip(axis_names, combo))
        key = (name, *(cell[axis] for axis in key_names))
        points.append(SweepPoint(key, fn, gd.cell(cell, quick, overrides)))
    return points


def _pick(overrides: Dict, key: str, quick: bool, quick_val, full_val):
    value = overrides.get(key)
    if value is not None:
        return value
    return quick_val if quick else full_val


def _resolve(module: str, attr: str) -> Callable[[], Callable]:
    def load():
        mod = import_module(f"repro.experiments.{module}")
        return getattr(mod, attr)
    return load


def _fig16_nic():
    from ..nic import LIQUIDIO_CN2350
    return LIQUIDIO_CN2350


def _chaos_cell(cell: Dict, quick: bool, o: Dict) -> Dict:
    kwargs: Dict = {"workload": cell["workload"], "seed": cell["seed"],
                    "trace": o.get("trace", False)}
    duration = o.get("duration_us")
    if duration is not None:
        kwargs["duration_us"] = duration
    elif quick:
        kwargs["duration_us"] = 25_000.0
    return kwargs


GRID_DEFS: Dict[str, GridDef] = {
    "fig5": GridDef(
        name="fig5",
        resolve=_resolve("characterization", "traffic_manager_experiment"),
        axes=lambda quick, o: [
            ("size", o.get("sizes") or (64, 512, 1024, 1500)),
            ("cores", o.get("cores") or (6, 12)),
        ],
        cell=lambda c, quick, o: dict(
            frame_bytes=c["size"], cores=c["cores"],
            duration_us=_pick(o, "duration_us", quick, 8_000.0, 25_000.0))),
    "fig13": GridDef(
        name="fig13",
        resolve=_resolve("applications", "run_app"),
        axes=lambda quick, o: [
            ("size", _pick(o, "sizes", quick,
                           (512,), (64, 256, 512, 1024))),
            ("system", ("dpdk", "ipipe")),
            ("app", ("rta", "dt", "rkv")),
        ],
        key_order=("system", "app", "size"),
        cell=lambda c, quick, o: dict(
            system=c["system"], app=c["app"], packet_size=c["size"],
            clients=_FIG13_CLIENTS[c["size"]],
            duration_us=_pick(o, "duration_us", quick,
                              8_000.0, 15_000.0))),
    "fig14": GridDef(
        name="fig14",
        resolve=_resolve("applications", "run_app"),
        axes=lambda quick, o: [
            ("system", ("dpdk", "ipipe")),
            ("app", ("rta", "dt", "rkv")),
            ("clients", _pick(o, "client_counts", quick,
                              (2, 16), (2, 8, 24, 64))),
        ],
        cell=lambda c, quick, o: dict(
            system=c["system"], app=c["app"], packet_size=512,
            clients=c["clients"],
            duration_us=_pick(o, "duration_us", quick,
                              8_000.0, 12_000.0))),
    "fig16": GridDef(
        name="fig16",
        resolve=_resolve("scheduler_study", "run_point"),
        axes=lambda quick, o: [
            ("dispersion", o.get("dispersions") or ("low", "high")),
            ("policy", o.get("policies")
             or ("fcfs", "drr", "ipipe")),
            ("load", _pick(o, "loads", quick,
                           (0.5, 0.9), (0.3, 0.5, 0.7, 0.9))),
        ],
        cell=lambda c, quick, o: dict(
            spec=_fig16_nic(), policy=c["policy"],
            dispersion=c["dispersion"], load=c["load"],
            duration_us=_pick(o, "duration_us", quick,
                              30_000.0, 100_000.0),
            seed=o.get("seed", 1))),
    "fig17": GridDef(
        name="fig17",
        resolve=_resolve("applications", "run_app"),
        axes=lambda quick, o: [
            ("frac", o.get("load_fractions") or (0.5, 1.0)),
            ("system", ("dpdk", "ipipe-hostonly")),
        ],
        key_order=("system", "frac"),
        cell=lambda c, quick, o: dict(
            system=c["system"], app="rkv", packet_size=512,
            clients=max(1, int(o.get("base_clients", 16) * c["frac"])),
            duration_us=_pick(o, "duration_us", quick,
                              8_000.0, 15_000.0))),
    "fig18": GridDef(
        name="fig18",
        resolve=lambda: fig18_point,
        axes=lambda quick, o: [],
        cell=lambda c, quick, o: dict(
            warmup_us=2_000.0 if quick else 5_000.0)),
    "chaos": GridDef(
        name="chaos",
        resolve=lambda: chaos_point,
        axes=lambda quick, o: [
            ("workload", o.get("workloads") or ("rkv", "dt", "rta")),
            ("seed", o.get("seeds") or (42,)),
        ],
        cell=_chaos_cell),
}


# -- the historical builder names, now thin spec wrappers ---------------------

def fig5_grid(quick: bool = False,
              sizes: Sequence[int] = (64, 512, 1024, 1500),
              cores: Sequence[int] = (6, 12),
              duration_us: Optional[float] = None) -> List[SweepPoint]:
    return build_grid("fig5", quick, sizes=sizes, cores=cores,
                      duration_us=duration_us)


def fig13_grid(quick: bool = False,
               sizes: Optional[Sequence[int]] = None,
               duration_us: Optional[float] = None) -> List[SweepPoint]:
    return build_grid("fig13", quick, sizes=sizes, duration_us=duration_us)


def fig14_grid(quick: bool = False,
               client_counts: Optional[Sequence[int]] = None,
               duration_us: Optional[float] = None) -> List[SweepPoint]:
    return build_grid("fig14", quick, client_counts=client_counts,
                      duration_us=duration_us)


def fig16_grid(quick: bool = False,
               dispersions: Sequence[str] = ("low", "high"),
               loads: Optional[Sequence[float]] = None,
               policies: Optional[Sequence[str]] = None,
               duration_us: Optional[float] = None,
               seed: int = 1) -> List[SweepPoint]:
    return build_grid("fig16", quick, dispersions=dispersions, loads=loads,
                      policies=policies, duration_us=duration_us, seed=seed)


def fig17_grid(quick: bool = False,
               load_fractions: Sequence[float] = (0.5, 1.0),
               duration_us: Optional[float] = None,
               base_clients: int = 16) -> List[SweepPoint]:
    return build_grid("fig17", quick, load_fractions=load_fractions,
                      duration_us=duration_us, base_clients=base_clients)


def fig18_grid(quick: bool = False) -> List[SweepPoint]:
    return build_grid("fig18", quick)


def chaos_grid(quick: bool = False,
               workloads: Sequence[str] = ("rkv", "dt", "rta"),
               seeds: Sequence[int] = (42,),
               trace: bool = False,
               duration_us: Optional[float] = None) -> List[SweepPoint]:
    return build_grid("chaos", quick, workloads=workloads, seeds=seeds,
                      trace=trace, duration_us=duration_us)


GRIDS = {
    "fig5": fig5_grid,
    "fig13": fig13_grid,
    "fig14": fig14_grid,
    "fig16": fig16_grid,
    "fig17": fig17_grid,
    "fig18": fig18_grid,
    "chaos": chaos_grid,
}
