"""Content-addressed on-disk result cache for sweep points.

Every experiment point in a sweep is a pure function of its keyword
arguments plus the code that computes it, so its result can be cached
under ``sha256(code_fingerprint, fn qualname, canonical(kwargs))``:

* the **code fingerprint** hashes the source of every ``.py`` file in the
  ``repro`` package — any code change, anywhere in the package,
  invalidates the whole cache (coarse but sound: an engine tweak can
  shift any figure);
* the **config hash** canonicalises the point's kwargs into a stable
  string (sorted dict order, dataclasses by field, no memory addresses),
  so logically-equal configs hit the same entry across processes and
  interpreter restarts regardless of ``PYTHONHASHSEED``.

Entries are pickles written atomically (temp file + ``os.replace``), so
a sweep killed mid-write never corrupts the cache, and concurrent
workers publishing the same key simply race to an identical value.

See ``docs/PERFORMANCE.md`` for the invalidation rules.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import pickle
import tempfile
from pathlib import Path
from typing import Any, Callable, Dict, Mapping, Optional, Tuple

#: Default cache location (overridable via CLI flags or REPRO_CACHE_DIR).
DEFAULT_CACHE_DIR = ".sweep_cache"

_CODE_FP_CACHE: Dict[str, str] = {}


def code_fingerprint(package_root: Optional[str] = None) -> str:
    """SHA-256 over the sources of the ``repro`` package (memoised)."""
    if package_root is None:
        import repro
        package_root = os.path.dirname(os.path.abspath(repro.__file__))
    cached = _CODE_FP_CACHE.get(package_root)
    if cached is not None:
        return cached
    digest = hashlib.sha256()
    root = Path(package_root)
    for path in sorted(root.rglob("*.py")):
        digest.update(str(path.relative_to(root)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    fp = digest.hexdigest()
    _CODE_FP_CACHE[package_root] = fp
    return fp


def canonical(obj: Any) -> str:
    """A stable, process-independent string form of a config value.

    Dicts are serialised in sorted-key order, sets sorted, dataclasses by
    (qualified class name, field values).  Values whose ``repr`` embeds a
    memory address are rejected — they cannot produce stable keys.
    """
    if isinstance(obj, Mapping):
        inner = ",".join(f"{canonical(k)}:{canonical(v)}"
                         for k, v in sorted(obj.items(), key=lambda kv: repr(kv[0])))
        return "{" + inner + "}"
    if isinstance(obj, (list, tuple)):
        inner = ",".join(canonical(v) for v in obj)
        return ("[" if isinstance(obj, list) else "(") + inner + \
               ("]" if isinstance(obj, list) else ")")
    if isinstance(obj, (set, frozenset)):
        return "{" + ",".join(sorted(canonical(v) for v in obj)) + "}"
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        cls = type(obj)
        body = ",".join(f"{f.name}={canonical(getattr(obj, f.name))}"
                        for f in dataclasses.fields(obj))
        return f"{cls.__module__}.{cls.__qualname__}({body})"
    text = repr(obj)
    if " object at 0x" in text:
        raise TypeError(
            f"cannot build a stable cache key from {type(obj).__name__}: "
            f"its repr embeds a memory address; pass primitives or "
            f"dataclasses instead")
    return text


class ResultCache:
    """Pickle-backed content-addressed store under one root directory."""

    def __init__(self, root: str = DEFAULT_CACHE_DIR,
                 code_fp: Optional[str] = None):
        self.root = Path(root)
        self.code_fp = code_fp if code_fp is not None else code_fingerprint()
        self.hits = 0
        self.misses = 0
        self.puts = 0

    # -- keys ----------------------------------------------------------
    def key_for(self, fn: Callable, kwargs: Mapping[str, Any]) -> str:
        spec = f"{fn.__module__}.{fn.__qualname__}({canonical(dict(kwargs))})"
        digest = hashlib.sha256()
        digest.update(self.code_fp.encode())
        digest.update(b"\0")
        digest.update(spec.encode())
        return digest.hexdigest()

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    # -- access --------------------------------------------------------
    def get(self, key: str) -> Tuple[bool, Any]:
        """(hit, value); a corrupt or missing entry is a miss."""
        try:
            with open(self._path(key), "rb") as fh:
                value = pickle.load(fh)
        except (OSError, pickle.PickleError, EOFError, AttributeError):
            self.misses += 1
            return False, None
        self.hits += 1
        return True, value

    def put(self, key: str, value: Any) -> None:
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(value, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.puts += 1

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        if self.root.is_dir():
            for path in self.root.rglob("*.pkl"):
                path.unlink()
                removed += 1
        return removed

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
