"""Parallel sweep executor with deterministic merge and result caching.

Every paper figure is a grid of independent simulation points (load
levels, NIC specs, chaos seeds).  :class:`ParallelSweep` fans such a
grid out to a process pool and merges the results *deterministically by
point key* — each point runs its own :class:`~repro.sim.Simulator` from
its own seeds, so a worker process computes bit-identical results to a
serial run, and the merge order is the sorted key order regardless of
completion order.  The optional :class:`~repro.exec.cache.ResultCache`
makes re-running figure scripts recompute only dirty points.

Point functions must be module-level (picklable by reference) and return
picklable values.  The pool uses the ``fork`` start method where
available so workers inherit the parent's interpreter state — including
``PYTHONHASHSEED`` — which keeps any hash-order-dependent iteration
identical across parent and children.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import pickle
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Tuple

from .cache import ResultCache


def result_fingerprint(results: Mapping[Tuple, Any]) -> str:
    """Canonical digest of a merged result mapping: SHA-256 over each
    (key, value) pickled *independently*, in mapping order.

    Two result sets are bit-identical iff their fingerprints match.
    Pickling the whole dict in one go would additionally encode CPython
    string-interning accidents — the pickler memoises by object identity,
    so an interned string shared between a key tuple and a value (or
    between two values) becomes a back-reference in an all-in-process run
    but not after a pool or cache round trip, changing the bytes without
    changing any content.  Per-point pickles are immune to that.
    """
    digest = hashlib.sha256()
    for key, value in results.items():
        digest.update(pickle.dumps(key))
        digest.update(b"\0")
        digest.update(pickle.dumps(value))
        digest.update(b"\0")
    return digest.hexdigest()


class SweepPoint:
    """One cell of an experiment grid: a key, a function, its kwargs."""

    __slots__ = ("key", "fn", "kwargs")

    def __init__(self, key: Tuple, fn: Callable, kwargs: Mapping[str, Any]):
        self.key = key
        self.fn = fn
        self.kwargs = dict(kwargs)

    def __repr__(self) -> str:
        return f"SweepPoint({self.key!r}, {self.fn.__qualname__})"


def _execute(payload: Tuple[Callable, Dict[str, Any]]) -> Any:
    fn, kwargs = payload
    return fn(**kwargs)


def _worker_init() -> None:
    """Pool-worker initializer: pay the heavy experiment imports once per
    worker instead of once per point.  Under the ``spawn`` start method a
    fresh interpreter imports ``repro`` lazily on the first unpickled
    point — front-loading it here moves that cost out of the measured
    per-point path (under ``fork`` the modules are inherited and these
    imports are no-ops)."""
    from ..experiments import scheduler_study  # noqa: F401
    from ..experiments import characterization  # noqa: F401
    from .. import scenario  # noqa: F401


@dataclass
class SweepReport:
    """Outcome of one executor run."""

    results: Dict[Tuple, Any]          # ordered by sorted point key
    jobs: int
    executed: int                      # points actually computed
    cache_hits: int
    wall_s: float
    cache_dir: Optional[str] = None
    keys_executed: List[Tuple] = field(default_factory=list)

    @property
    def points(self) -> int:
        return len(self.results)

    @property
    def hit_rate(self) -> float:
        return self.cache_hits / self.points if self.points else 0.0

    def summary(self) -> str:
        return (f"{self.points} points in {self.wall_s:.2f}s wall "
                f"(jobs={self.jobs}, computed={self.executed}, "
                f"cache hits={self.cache_hits}, "
                f"hit rate={self.hit_rate:.0%})")


def _sort_key(point: SweepPoint):
    # Mixed-type keys (rare) fall back to repr ordering, still total.
    return tuple((type(part).__name__, repr(part)) for part in point.key)


class ParallelSweep:
    """Fan a grid of :class:`SweepPoint` out to a process pool.

    ``jobs=1`` executes inline (no pool, no pickling) — the serial
    reference path the determinism tests compare against.  ``jobs=0``
    means one worker per CPU.

    The pool is created lazily on the first parallel :meth:`run` and
    **reused across runs** — worker startup (process creation plus the
    initializer's imports) is paid once per executor, not once per grid
    cell.  Call :meth:`close` (or use the executor as a context manager)
    to release the workers; an executor that is garbage-collected
    terminates its pool.
    """

    def __init__(self, jobs: int = 1, cache: Optional[ResultCache] = None,
                 mp_start: str = "fork"):
        if jobs == 0:
            jobs = multiprocessing.cpu_count()
        self.jobs = max(1, jobs)
        self.cache = cache
        if mp_start not in multiprocessing.get_all_start_methods():
            mp_start = "spawn"
        self.mp_start = mp_start
        self._pool = None

    def _get_pool(self):
        if self._pool is None:
            ctx = multiprocessing.get_context(self.mp_start)
            self._pool = ctx.Pool(processes=self.jobs,
                                  initializer=_worker_init)
        return self._pool

    def close(self) -> None:
        """Release the worker pool (idempotent)."""
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "ParallelSweep":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def __del__(self):  # pragma: no cover - GC timing dependent
        pool = getattr(self, "_pool", None)
        if pool is not None:
            pool.terminate()

    def run(self, points: Iterable[SweepPoint]) -> SweepReport:
        t0 = time.perf_counter()
        ordered = sorted(points, key=_sort_key)
        keys = [p.key for p in ordered]
        if len(set(keys)) != len(keys):
            seen: set = set()
            dup = next(k for k in keys if k in seen or seen.add(k))
            raise ValueError(f"duplicate sweep point key: {dup!r}")

        results: Dict[Tuple, Any] = {}
        todo: List[SweepPoint] = []
        todo_cache_keys: Dict[Tuple, str] = {}
        cache = self.cache
        if cache is not None:
            for point in ordered:
                ckey = cache.key_for(point.fn, point.kwargs)
                hit, value = cache.get(ckey)
                if hit:
                    results[point.key] = value
                else:
                    todo.append(point)
                    todo_cache_keys[point.key] = ckey
        else:
            todo = list(ordered)

        cache_hits = len(ordered) - len(todo)
        computed: Dict[Tuple, Any] = {}
        if todo:
            if self.jobs <= 1 or len(todo) == 1:
                for point in todo:
                    computed[point.key] = point.fn(**point.kwargs)
            else:
                payloads = [(p.fn, p.kwargs) for p in todo]
                values = self._get_pool().map(_execute, payloads, chunksize=1)
                for point, value in zip(todo, values):
                    computed[point.key] = value
            if cache is not None:
                for point in todo:
                    cache.put(todo_cache_keys[point.key], computed[point.key])
        results.update(computed)

        # deterministic merge: sorted key order, independent of worker
        # completion order and of the caller's point order
        merged = {p.key: results[p.key] for p in ordered}
        return SweepReport(
            results=merged, jobs=self.jobs,
            executed=len(todo), cache_hits=cache_hits,
            wall_s=time.perf_counter() - t0,
            cache_dir=str(cache.root) if cache is not None else None,
            keys_executed=[p.key for p in todo],
        )


def run_grid(points: Iterable[SweepPoint], jobs: int = 1,
             cache: Optional[ResultCache] = None) -> SweepReport:
    """One-shot convenience wrapper around :class:`ParallelSweep`."""
    return ParallelSweep(jobs=jobs, cache=cache).run(points)
