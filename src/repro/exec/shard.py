"""Parallel-in-time execution: rack-sharded conservative simulation.

A multi-rack :class:`~repro.scenario.spec.ScenarioSpec` decomposes
naturally along its spine: every packet that crosses racks pays at least
the inter-rack propagation delay, so a rack can safely simulate
``lookahead = inter_rack_propagation_us`` beyond the earliest event of
any *other* rack without risk of receiving a message from its past.
That is the classic conservative (Chandy–Misra–Bryant) synchronization
argument, with the fabric's physics supplying the lookahead.

:class:`RackShardExecutor` builds one independent
:class:`~repro.sim.Simulator` per rack — each with its own ToR, a local
replica of the spine switch, and only its own servers, clients and
fleets — and advances them in lockstep windows::

    t_min  = min over shards of next_event_time()
    bound  = min(t_min + lookahead, horizon)
    every shard runs to ``bound``; cross-rack frames are exchanged

The cross-rack hand-off happens at *transmit* time: the shard-local
spine uplink (:class:`_BoundaryLink`) computes the exact spine arrival
time ``deliver_at`` with the same queueing/serialization/fault logic as
:meth:`~repro.net.link.Link.transmit`, but instead of posting a local
delivery event it exports ``(deliver_at, packet)`` to the coordinator.
Because ``deliver_at >= transmit_time + serialization + lookahead`` and
every transmit in a window fires at or after ``t_min``, exported frames
always land strictly beyond the window bound — the destination shard
has never advanced past them, and the injection is an ordinary
``post_at`` into its future.

Equivalence is the contract, not an aspiration: a sharded run produces
the *same* :class:`~repro.scenario.run.ScenarioResult` fingerprint as
the serial single-simulator run of the same spec, and the merged
per-event streams match under :func:`repro.check.canonical_digest`
(the spec validation layer rejects features — steering, tracing,
shared fault streams, global fault budgets — that cannot decompose).

Shards run in-process by default.  With ``processes > 0`` (ExecSpec or
constructor), each rack becomes a forked worker process exchanging one
message round-trip per window over a pipe; results are merged from
picklable :class:`ShardPartial` summaries.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from ..net.link import Link
from ..net.packet import Packet, serialization_delay_us
from ..net.switch import SpineSwitch
from ..net.fabric import DEFAULT_UPLINK_MULTIPLIER, Fabric
from ..scenario.build import (
    ClientPort,
    Scenario,
    _build_app,
    _build_fleet,
    _install_payload_router,
    make_server,
)
from ..scenario.run import ScenarioResult
from ..scenario.spec import FabricSpec, ScenarioSpec, resolve_nic
from ..sim import FaultPlane, FaultSpec, RecoveryPolicy, Simulator
from ..core import SchedulerConfig, recovery_snapshot


class _BoundaryLink(Link):
    """The shard-local replica of a rack's ``spine-up`` link.

    Transmit semantics are byte-for-byte those of
    :meth:`Link.transmit` — output-queue serialization, frame counters,
    per-frame fault consultation — except the delivery event: the frame
    is handed to the shard's export callback together with its computed
    spine arrival time instead of being posted locally.  Exporting at
    transmit time (not delivery time) is what keeps the conservative
    window sound: ``deliver_at`` always exceeds the current bound.
    """

    def __init__(self, sim: Simulator, bandwidth_gbps: float, export,
                 propagation_us: float = 0.0, name: str = "spine-up"):
        super().__init__(sim, bandwidth_gbps, receiver=None,
                         propagation_us=propagation_us, name=name)
        self._export = export

    def transmit(self, packet: Packet) -> float:
        start = max(self.sim.now, self._next_free)
        ser = serialization_delay_us(self.bandwidth_gbps, packet.size)
        done = start + ser
        self._next_free = done
        deliver_at = done + self.propagation_us
        self.frames_sent += 1
        self.bytes_sent += packet.size
        fate = None
        if self.fault_plane is not None:
            fate = self.fault_plane.frame_fate(self.name, packet)
        if fate is not None:
            # same wire occupancy as a delivered frame; never handed up
            if fate == "drop":
                self.frames_dropped += 1
            else:
                self.frames_corrupted += 1
            return deliver_at
        self._export(deliver_at, packet)
        return deliver_at


class _ShardFabric(Fabric):
    """One rack's slice of a multi-rack fabric.

    A single-rack :class:`Fabric` plus — when the *global* spec is
    multi-rack — a local :class:`SpineSwitch` replica reachable over a
    :class:`_BoundaryLink` uplink.  Link and switch names match the
    global fabric exactly (``{rack}.tor``, ``{rack}.spine-up``,
    ``{rack}.spine-down``) so fault targeting and merged counters line
    up with a serial run.
    """

    def __init__(self, sim: Simulator, fabric: FabricSpec, rack: str,
                 all_racks: List[str], export):
        super().__init__(
            sim, bandwidth_gbps=fabric.bandwidth_gbps,
            propagation_us=fabric.propagation_us,
            racks=(rack,),
            tor_latency_us=fabric.tor_latency_us,
            spine_latency_us=fabric.spine_latency_us,
            uplink_gbps=fabric.uplink_gbps,
            inter_rack_propagation_us=fabric.inter_rack_propagation_us)
        self.shard_rack = rack
        if len(all_racks) > 1:
            tor = self.switches[rack]
            tor.name = f"{rack}.tor"
            up_bw = (fabric.uplink_gbps
                     or fabric.bandwidth_gbps * DEFAULT_UPLINK_MULTIPLIER)
            self.spine = SpineSwitch(
                sim, forwarding_latency_us=fabric.spine_latency_us)
            up = _BoundaryLink(
                sim, up_bw, export=export,
                propagation_us=fabric.inter_rack_propagation_us,
                name=f"{rack}.spine-up")
            down = Link(sim, up_bw, receiver=tor.deliver_local,
                        propagation_us=fabric.inter_rack_propagation_us,
                        name=f"{rack}.spine-down")
            tor.uplink = up
            self.spine.attach_rack(rack, down)
            self._spine_links.extend((up, down))


def _build_shard(spec: ScenarioSpec, rack_name: str, export
                 ) -> Tuple[Scenario, List[int]]:
    """Build one rack's scenario slice, mirroring ``build()`` step for
    step: fabric → fault plane → recovery → local servers → apps (full
    replica-group math, local nodes only) → payload routers → local
    client ports → local fleets → fault wiring.  Returns the scenario
    and ``gen_fleets``: the global fleet index behind each generator,
    in construction order (the merge key)."""
    sim = Simulator()
    network = _ShardFabric(sim, spec.fabric, rack_name,
                           [r.name for r in spec.racks], export)
    scenario = Scenario(spec=spec, sim=sim, network=network)
    local = next(r for r in spec.racks if r.name == rack_name)
    for sspec in local.servers:
        network.place(sspec.name, rack_name)
    for cspec in local.clients:
        network.place(cspec.name, rack_name)

    if spec.faults:
        streams = spec.execution.resolved_fault_streams()
        plane = FaultPlane(sim, seed=spec.seed,
                          component_streams=streams == "per-component")
        for decl in spec.faults:
            plane.add(FaultSpec(
                kind=decl.kind, target=decl.target, node=decl.node,
                probability=decl.probability, every_nth=decl.every_nth,
                at_us=tuple(decl.at_us), period_us=decl.period_us,
                start_us=decl.start_us, stop_us=decl.stop_us,
                duration_us=decl.duration_us, max_count=decl.max_count))
        scenario.fault_plane = plane

    delay = spec.observability.recovery_restart_delay_us
    if delay is not None:
        scenario.recovery = RecoveryPolicy(restart_delay_us=delay)

    for sspec in local.servers:
        config = (SchedulerConfig(**sspec.scheduler_kwargs())
                  if sspec.scheduler else None)
        scenario.servers[sspec.name] = make_server(
            sim, network, sspec.name, resolve_nic(sspec.nic),
            system=sspec.system, config=config,
            host_workers=sspec.host_workers,
            host_cores=sspec.host_cores, reliable=sspec.reliable,
            fault_plane=scenario.fault_plane,
            recovery=scenario.recovery)

    for app in spec.apps:
        scenario.apps.append(_build_app(scenario, app))

    if any(f.workload != "none" for f in spec.fleets):
        for app in scenario.apps:
            if app.kind in ("rkv", "dt", "rta"):
                for group in app.groups:
                    for name in group:
                        if name not in scenario.servers:
                            continue
                        _install_payload_router(scenario, name)

    for cspec in local.clients:
        port = ClientPort(sim, network, cspec.name)
        network.attach(cspec.name, port.receive, rack=rack_name)
        scenario.clients[cspec.name] = port

    gen_fleets: List[int] = []
    for fleet_idx, fleet in enumerate(spec.fleets):
        if spec.rack_of(fleet.client) != rack_name:
            continue
        before = len(scenario.generators)
        _build_fleet(scenario, fleet)
        gen_fleets.extend([fleet_idx] * (len(scenario.generators) - before))

    if scenario.fault_plane is not None:
        scenario.fault_plane.wire_network(network)

    return scenario, gen_fleets


@dataclass
class ShardPartial:
    """One shard's contribution to the merged result (picklable, so the
    process-backed mode can ship it over a pipe)."""

    rack: str
    #: global fleet index -> [(sent, completed-or-None, latency samples)]
    #: in generator construction order
    fleet_gens: Dict[int, List[Tuple[int, Optional[int], Optional[List[float]]]]]
    client_received: Dict[str, int]
    tor_name: str
    tor_counters: Tuple[int, int]
    spine_counters: Optional[Tuple[int, int]]
    host_cores: Dict[str, float]
    nic_cores: Dict[str, float]
    faults_injected: int
    recoveries: int


class _Shard:
    """A rack's simulator plus its cross-rack outbox."""

    def __init__(self, spec: ScenarioSpec, rack: str, index: int):
        self.spec = spec
        self.rack = rack
        self.index = index
        #: (deliver_at, transmit_time, src index, export order, dst rack,
        #: packet) — the sort key reproduces the serial posting order
        self.outbox: List[Tuple[float, float, int, int, str, Packet]] = []
        self._order = 0
        self._rack_of = {name: spec.rack_of(name)
                         for name in spec.server_names()
                         + spec.client_names()}
        self.scenario, self.gen_fleets = _build_shard(spec, rack,
                                                      self._export)
        self.sim = self.scenario.sim

    # -- boundary ---------------------------------------------------------
    def _export(self, deliver_at: float, packet: Packet) -> None:
        dst_rack = self._rack_of.get(packet.dst)
        if dst_rack is None or dst_rack == self.rack:
            # unknown destination (the global spine would drop it) or a
            # frame the ToR sent up for a local node (cannot happen via
            # ToR logic, kept for safety): deliver to the local replica,
            # exactly where a plain Link would have
            self.sim.post_at(deliver_at, self.scenario.network.spine.ingest,
                             packet)
        else:
            self.outbox.append((deliver_at, self.sim.now, self.index,
                                self._order, dst_rack, packet))
            self._order += 1

    def inject(self, when: float, packet: Packet) -> None:
        """Deliver a remote shard's frame to the local spine replica."""
        self.sim.post_at(when, self.scenario.network.spine.ingest, packet)

    # -- conservative window protocol -------------------------------------
    def next_time(self) -> Optional[float]:
        return self.sim.next_event_time()

    def advance(self, bound: float) -> None:
        self.sim.run(until=bound)

    def drain_outbox(self) -> List[Tuple]:
        out, self.outbox = self.outbox, []
        return out

    def finish(self, horizon: float) -> None:
        self.scenario.run(until=horizon)
        self.scenario.stop()

    # -- result extraction -------------------------------------------------
    def partial(self, horizon: float) -> ShardPartial:
        scenario = self.scenario
        fleet_gens: Dict[int, List[Tuple]] = {}
        for gen, fleet_idx in zip(scenario.generators, self.gen_fleets):
            if hasattr(gen, "completed"):
                entry = (gen.sent, gen.completed, list(gen.latency.samples))
            else:
                entry = (gen.sent, None, None)
            fleet_gens.setdefault(fleet_idx, []).append(entry)
        tor = scenario.network.switches[self.rack]
        spine = scenario.network.spine
        host_cores = {}
        nic_cores = {}
        recoveries = 0
        for name in sorted(scenario.servers):
            server = scenario.servers[name]
            runtime = server.runtime
            host_cores[name] = runtime.host_cores_used(horizon)
            if server.nic is not None and hasattr(server.nic, "cores_used"):
                nic_cores[name] = server.nic.cores_used(horizon)
        plane = scenario.fault_plane
        if plane is not None:
            recoveries = sum(
                recovery_snapshot(server.runtime).restarts
                for server in scenario.servers.values()
                if hasattr(server.runtime, "nic_scheduler"))
        return ShardPartial(
            rack=self.rack,
            fleet_gens=fleet_gens,
            client_received={name: port.received
                             for name, port in scenario.clients.items()},
            tor_name=tor.name,
            tor_counters=(tor.forwarded, tor.dropped),
            spine_counters=((spine.forwarded, spine.dropped)
                            if spine is not None else None),
            host_cores=host_cores,
            nic_cores=nic_cores,
            faults_injected=plane.snapshot().total if plane else 0,
            recoveries=recoveries,
        )


def _transfer_key(entry: Tuple) -> Tuple:
    # (deliver_at, transmit time, src shard, export order): the serial
    # run posts spine arrivals in transmit order, so ties on deliver_at
    # resolve by when (then where) the frame left its rack
    return (entry[0], entry[1], entry[2], entry[3])


def _merge(spec: ScenarioSpec, horizon: float,
           partials: List[ShardPartial]) -> ScenarioResult:
    """Fold shard partials into the result a serial run would report.

    Latency samples concatenate in global generator order (fleet order,
    then per-fleet target order) so the float summation in the mean is
    performed in the serial order; ToR counters key by switch name;
    spine counters sum over the per-shard replicas."""
    result = ScenarioResult(name=spec.name, seed=spec.seed,
                            duration_us=horizon)
    by_rack = {p.rack: p for p in partials}
    latencies: List[float] = []
    for fleet_idx, fleet in enumerate(spec.fleets):
        partial = by_rack[spec.rack_of(fleet.client)]
        for sent, completed, samples in partial.fleet_gens.get(fleet_idx, []):
            result.sent += sent
            if completed is not None:
                result.completed += completed
                latencies.extend(samples)
    if latencies:
        from ..sim import LatencyRecorder
        rec = LatencyRecorder("scenario")
        rec.samples = latencies
        result.mean_latency_us = rec.mean
        result.p99_latency_us = rec.p99
    spine_forwarded = spine_dropped = 0
    saw_spine = False
    for partial in partials:
        result.client_received.update(partial.client_received)
        result.switch_counters[partial.tor_name] = partial.tor_counters
        if partial.spine_counters is not None:
            saw_spine = True
            spine_forwarded += partial.spine_counters[0]
            spine_dropped += partial.spine_counters[1]
        result.host_cores.update(partial.host_cores)
        result.nic_cores.update(partial.nic_cores)
        result.faults_injected += partial.faults_injected
        result.recoveries += partial.recoveries
    if saw_spine:
        result.switch_counters["spine"] = (spine_forwarded, spine_dropped)
    return result


def _shard_worker(conn, spec: ScenarioSpec, rack: str, index: int) -> None:
    """Process-backed worker: one shard behind a pipe.

    Protocol (one round-trip per window): after construction the worker
    sends its first ``next_event_time``.  Each ``("advance", bound,
    injections)`` applies the coordinator's pending cross-rack frames,
    runs to ``bound`` and replies ``(next_event_time, outbox)``.
    ``("finish", horizon, injections)`` drains to the horizon and
    replies with the :class:`ShardPartial`."""
    shard = _Shard(spec, rack, index)
    conn.send(shard.next_time())
    while True:
        msg = conn.recv()
        if msg[0] == "advance":
            _, bound, injections = msg
            for when, packet in injections:
                shard.inject(when, packet)
            shard.advance(bound)
            conn.send((shard.next_time(), shard.drain_outbox()))
        else:  # ("finish", horizon, injections)
            _, horizon, injections = msg
            for when, packet in injections:
                shard.inject(when, packet)
            shard.finish(horizon)
            conn.send(shard.partial(horizon))
            conn.close()
            return


class RackShardExecutor:
    """Conservative parallel-in-time executor over a rack decomposition.

    ``run()`` returns a :class:`ScenarioResult` whose ``fingerprint()``
    is bit-identical to ``run_scenario`` on the same spec with
    ``shards="none"`` (given per-component fault streams, which the
    executor forces).  ``rounds`` and ``transfers`` report the number of
    synchronization windows and cross-rack frames after a run.

    In-process shards by default; ``processes > 0`` forks one worker
    per rack (POSIX only) with a single pipe round-trip per window.
    """

    def __init__(self, spec: ScenarioSpec,
                 duration_us: Optional[float] = None,
                 processes: Optional[int] = None,
                 lookahead_us: Optional[float] = None):
        ex = spec.execution
        if ex.shards != "by-rack":
            # apply by-rack validation rules even when the caller hands
            # us a serial spec directly
            spec = replace(spec, execution=replace(ex, shards="by-rack"))
        spec.validate()
        self.spec = spec
        self.racks = [r.name for r in spec.racks]
        self.horizon = (duration_us if duration_us is not None
                        else spec.duration_us)
        base = spec.fabric.inter_rack_propagation_us
        override = (lookahead_us if lookahead_us is not None
                    else spec.execution.lookahead_us)
        # lookahead may only tighten: the fabric's inter-rack propagation
        # is the largest provably safe window
        self.lookahead_us = base if override is None else min(override, base)
        self.processes = (processes if processes is not None
                          else spec.execution.processes)
        self.rounds = 0
        self.transfers = 0

    def run(self) -> ScenarioResult:
        self.rounds = 0
        self.transfers = 0
        if self.processes > 0 and len(self.racks) > 1:
            partials = self._run_processes()
        else:
            partials = self._run_inprocess()
        return _merge(self.spec, self.horizon, partials)

    # -- in-process shards -------------------------------------------------
    def _run_inprocess(self) -> List[ShardPartial]:
        shards = [_Shard(self.spec, rack, idx)
                  for idx, rack in enumerate(self.racks)]
        if len(shards) > 1:
            by_rack = {shard.rack: shard for shard in shards}
            lookahead = self.lookahead_us
            horizon = self.horizon
            while True:
                t_min = None
                for shard in shards:
                    t = shard.next_time()
                    if t is not None and (t_min is None or t < t_min):
                        t_min = t
                if t_min is None or t_min > horizon:
                    break
                bound = min(t_min + lookahead, horizon)
                for shard in shards:
                    shard.advance(bound)
                transfers: List[Tuple] = []
                for shard in shards:
                    transfers.extend(shard.drain_outbox())
                if transfers:
                    transfers.sort(key=_transfer_key)
                    for when, _tau, _src, _order, rack, packet in transfers:
                        by_rack[rack].inject(when, packet)
                    self.transfers += len(transfers)
                self.rounds += 1
        for shard in shards:
            shard.finish(self.horizon)
        return [shard.partial(self.horizon) for shard in shards]

    # -- process-backed shards ---------------------------------------------
    def _run_processes(self) -> List[ShardPartial]:
        import multiprocessing as mp
        try:
            ctx = mp.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX
            raise RuntimeError(
                "process-backed shards need the fork start method; "
                "use processes=0 for in-process shards")
        conns = []
        procs = []
        try:
            for idx, rack in enumerate(self.racks):
                parent, child = ctx.Pipe()
                proc = ctx.Process(target=_shard_worker,
                                   args=(child, self.spec, rack, idx),
                                   daemon=True)
                proc.start()
                child.close()
                conns.append(parent)
                procs.append(proc)
            nexts = [conn.recv() for conn in conns]
            pending: List[List[Tuple[float, Packet]]] = [[] for _ in conns]
            rack_idx = {rack: idx for idx, rack in enumerate(self.racks)}
            lookahead = self.lookahead_us
            horizon = self.horizon
            while True:
                t_min = None
                for idx, nxt in enumerate(nexts):
                    cand = nxt
                    if pending[idx]:
                        pend_min = min(t for t, _ in pending[idx])
                        cand = (pend_min if cand is None
                                else min(cand, pend_min))
                    if cand is not None and (t_min is None or cand < t_min):
                        t_min = cand
                if t_min is None or t_min > horizon:
                    break
                bound = min(t_min + lookahead, horizon)
                for idx, conn in enumerate(conns):
                    conn.send(("advance", bound, pending[idx]))
                    pending[idx] = []
                transfers: List[Tuple] = []
                for idx, conn in enumerate(conns):
                    nxt, out = conn.recv()
                    nexts[idx] = nxt
                    transfers.extend(out)
                if transfers:
                    transfers.sort(key=_transfer_key)
                    for when, _tau, _src, _order, rack, packet in transfers:
                        pending[rack_idx[rack]].append((when, packet))
                    self.transfers += len(transfers)
                self.rounds += 1
            partials = []
            for idx, conn in enumerate(conns):
                conn.send(("finish", self.horizon, pending[idx]))
                pending[idx] = []
            for conn in conns:
                partials.append(conn.recv())
            return partials
        finally:
            for conn in conns:
                conn.close()
            for proc in procs:
                proc.join(timeout=30)
                if proc.is_alive():  # pragma: no cover - defensive
                    proc.terminate()


def run_sharded(spec: ScenarioSpec, duration_us: Optional[float] = None,
                processes: Optional[int] = None) -> ScenarioResult:
    """Convenience wrapper: shard by rack, run, merge."""
    return RackShardExecutor(spec, duration_us=duration_us,
                             processes=processes).run()
