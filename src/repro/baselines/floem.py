"""Floem-style static offload baseline (§5.6).

Floem [53] is a dataflow programming system for SmartNIC offload whose
placement is *static*: offloaded elements stay on the NIC regardless of
traffic, complex elements stay on the host, and NIC↔host traffic crosses
a per-packet logical queue.  Two consequences the paper measures:

* under small-packet load the NIC elements keep computing while the NIC
  cores are needed for forwarding, collapsing throughput (iPipe instead
  migrates everything to the host and dedicates NIC cores to packets);
* the NIC-side bypass/multiplexing queue charges every crossing packet,
  so even the best case loses per-core efficiency (1.6 vs 2.9 Gbps/core
  on RTA).

Implemented as an :class:`~repro.core.runtime.IPipeRuntime` configured
with every adaptive mechanism off, plus the per-packet multiplexing
overhead on NIC-side handlers.
"""

from __future__ import annotations

from typing import List, Optional

from ..core import IPipeRuntime, SchedulerConfig
from ..core.actor import Actor, Location, Message
from ..host.machine import HostMachine
from ..net import Network
from ..nic.device import SmartNic
from ..sim import Simulator, Timeout

#: Per-packet cost of Floem's NIC-side logical-queue multiplexing layer.
FLOEM_QUEUE_OVERHEAD_US = 1.0
#: Static placement rule: elements costlier than this run on the host
#: ("the common computation elements of Floem mainly comprise of simple
#: tasks ... complex ones are performed on the host side", §5.6).
FLOEM_COMPLEX_THRESHOLD_US = 10.0


def floem_config() -> SchedulerConfig:
    """Static placement: no downgrades, no migration, no auto-scaling."""
    return SchedulerConfig(downgrade_enabled=False, migration_enabled=False,
                           autoscale=False)


class FloemRuntime(IPipeRuntime):
    """iPipe's machinery with Floem's static policy and queue overhead."""

    def __init__(self, sim: Simulator, nic: SmartNic, host: HostMachine,
                 network: Network, node_name: str, host_workers: int = 4):
        super().__init__(sim, nic, host, network, node_name,
                         config=floem_config(), host_workers=host_workers)

    def register_actor(self, actor: Actor,
                       steering_keys: Optional[List[str]] = None,
                       region_bytes: Optional[int] = None) -> Actor:
        # Static dataflow placement, decided once at configuration time:
        # simple elements on the NIC, complex ones on the host; nothing
        # ever moves afterwards.
        if (actor.profile is not None
                and actor.profile.exec_us > FLOEM_COMPLEX_THRESHOLD_US):
            actor.location = Location.HOST
        actor.pinned = True
        return super().register_actor(actor, steering_keys=steering_keys,
                                      region_bytes=region_bytes)

    def _nic_executor(self, core_id: int, actor: Actor, msg: Message):
        # every packet pays the logical-queue multiplexing tax first
        yield Timeout(FLOEM_QUEUE_OVERHEAD_US)
        yield from super()._nic_executor(core_id, actor, msg)
