"""Comparison systems: DPDK host-only and Floem static offload."""

from .dpdk import DpdkRuntime
from .floem import FLOEM_QUEUE_OVERHEAD_US, FloemRuntime, floem_config

__all__ = [
    "DpdkRuntime",
    "FLOEM_QUEUE_OVERHEAD_US",
    "FloemRuntime",
    "floem_config",
]
