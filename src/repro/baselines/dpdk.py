"""DPDK host-only baseline runtime (§5.1's comparison systems).

The same application actors, but every handler runs on host cores behind
a DPDK poll-mode driver: the dumb NIC DMAs packets straight to host
descriptor rings, and the host core pays the stack's per-packet RX/TX
cost around each handler invocation.  No SmartNIC compute, no channels,
no migration.

The class intentionally mirrors :class:`repro.core.runtime.IPipeRuntime`'s
surface (``register_actor``, ``dispatch_table``, ``dmo``, ``storage``,
``transmit_from``, ``route_local``) so the identical app wiring classes
(RkvNode, DtCoordinatorNode, …) run unmodified on either runtime.
"""

from __future__ import annotations

import inspect
from types import SimpleNamespace
from typing import Dict, List, Optional

from ..core.actor import Actor, ActorTable, Location, Message
from ..core.dmo import DmoManager
from ..host.machine import HostMachine, StorageService
from ..host.stacks import StackCosts, dpdk_stack
from ..nic.calibration import dpdk_recv_us, dpdk_send_us
from ..net import Network, Packet
from ..nic.accelerators import AcceleratorBank
from ..nic.dma import DmaEngine
from ..sim import Simulator, Store, Timeout, UtilizationTracker, spawn


class DpdkRuntime:
    """Host-only execution environment with DPDK stack costs."""

    def __init__(self, sim: Simulator, host: HostMachine, network: Network,
                 node_name: str, workers: int = 8,
                 stack: Optional[StackCosts] = None,
                 link_bandwidth_gbps: Optional[float] = None):
        self.sim = sim
        self.host = host
        self.network = network
        self.node_name = node_name
        self.stack = stack or dpdk_stack()
        self.actors = ActorTable()
        self.dmo = DmoManager()
        self.storage: StorageService = host.storage
        self.dispatch_table: Dict[str, str] = {}
        #: accelerator profiles for ctx.accelerator's host-software path
        self.nic = SimpleNamespace(
            accelerators=AcceleratorBank(sim),
            spec=SimpleNamespace(model="dumb NIC"),
        )
        #: the dumb NIC's DMA engine: every packet pays the PCIe crossing
        #: latency to/from host memory (descriptor + payload write)
        self._dma = DmaEngine(sim)
        self.rx_queue: Store = Store(sim)
        self.host_util: List[UtilizationTracker] = [
            UtilizationTracker() for _ in range(workers)]
        self.host_ops = 0
        self._running = True
        self._tx_pending = 0
        self._uplink = network.attach(node_name, self.on_packet,
                                      bandwidth_gbps=link_bandwidth_gbps)
        self._workers = [
            spawn(sim, self._worker(w), name=f"{node_name}-dpdk{w}")
            for w in range(workers)]

    # -- iPipe-compatible surface ------------------------------------------------
    def register_actor(self, actor: Actor,
                       steering_keys: Optional[List[str]] = None,
                       region_bytes: Optional[int] = None) -> Actor:
        actor.location = Location.HOST     # everything runs on the host
        self.actors.register(actor)
        self.dmo.create_region(actor.name,
                               region_bytes or max(actor.state_bytes * 2, 1 << 20))
        for key in steering_keys or [actor.name]:
            self.dispatch_table[key] = actor.name
        if actor.init_handler is not None:
            from ..core.runtime import ExecutionContext
            actor.init_handler(actor, ExecutionContext(self, actor, core_id=-1))
        return actor

    def stop(self) -> None:
        self._running = False

    def on_packet(self, packet: Packet) -> None:
        target = self.dispatch_table.get(packet.kind)
        if target is None:
            return
        payload, kind = packet.payload, packet.kind
        if isinstance(payload, dict) and "kind" in payload and "payload" in payload:
            kind, payload = payload["kind"], payload["payload"]
        msg = Message(target=target, kind=kind, payload=payload,
                      size=packet.size, source=packet.src,
                      created_at=packet.created_at, packet=packet)
        msg.meta["nic_arrival"] = self.sim.now
        # NIC→host delivery: DMA write + the descriptor-pipeline share of
        # the Figure-6 receive latency (its CPU share is charged in the
        # worker; batching discounts occupancy, not one-shot latency)
        pipeline = max(dpdk_recv_us(packet.size)
                       - self.stack.rx_cost(packet.size), 0.0)
        self.sim.post(self._dma.write_latency_us(packet.size) + pipeline,
                         self.rx_queue.put_nowait, msg)

    def route_local(self, msg: Message, origin: Location) -> None:
        msg.meta["nic_arrival"] = self.sim.now
        msg.meta["local"] = True           # no RX stack cost for local sends
        self.rx_queue.put_nowait(msg)

    def transmit_from(self, side: Location, packet: Packet) -> None:
        self._tx_pending += 1
        # host→NIC: descriptor fetch + payload DMA read + the pipeline
        # share of the Figure-6 send latency
        pipeline = max(dpdk_send_us(packet.size)
                       - self.stack.tx_cost(packet.size), 0.0)
        self.sim.post(self._dma.read_latency_us(packet.size) + pipeline,
                         self._uplink.transmit, packet)

    # -- worker loop ---------------------------------------------------------------
    def _worker(self, worker_id: int):
        while self._running:
            msg = self.rx_queue.try_get_nowait()
            if msg is None:
                yield Timeout(0.5)
                continue
            actor = self.actors.lookup(msg.target)
            if actor is None or not actor.schedulable:
                continue
            if not actor.try_lock(2000 + worker_id):
                actor.mailbox.append(msg)
                continue
            start = self.sim.now
            try:
                yield from self._serve(actor, msg)
                while actor.mailbox:
                    yield from self._serve(actor, actor.mailbox.popleft())
            finally:
                actor.unlock(2000 + worker_id)
            self.host_util[worker_id].add_busy(self.sim.now - start)

    def _serve(self, actor: Actor, msg: Message):
        from ..core.runtime import ExecutionContext

        if not msg.meta.get("local"):
            yield Timeout(self.stack.rx_cost(msg.size))
        tx_before = self._tx_pending
        start = self.sim.now
        ctx = ExecutionContext(self, actor, core_id=2000)
        result = actor.exec_handler(actor, msg, ctx)
        if inspect.isgenerator(result):
            yield from result
        elif actor.profile is not None:
            yield ctx.compute(profile=actor.profile)
        tx_count = self._tx_pending - tx_before
        if tx_count:
            yield Timeout(tx_count * self.stack.tx_cost(msg.size))
        self.host_ops += 1
        actor.record_execution(
            self.sim.now - msg.meta.get("nic_arrival", msg.created_at),
            msg.size, service_us=self.sim.now - start)

    # -- metrics --------------------------------------------------------------------
    def host_cores_used(self, elapsed_us: float) -> float:
        return sum(u.utilization(elapsed_us) for u in self.host_util)

    def nic_cores_used(self, elapsed_us: float) -> float:
        return 0.0
