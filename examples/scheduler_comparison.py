#!/usr/bin/env python
"""Compare FCFS, DRR and the iPipe hybrid scheduler (mini Figure 16).

Runs the §5.4 scheduler study at a few load points for both request-cost
regimes and prints the P99 tail latencies side by side.

Run:  python examples/scheduler_comparison.py   (takes a couple minutes)
"""

from repro.experiments.report import render_table
from repro.experiments.scheduler_study import POLICIES, run_point
from repro.nic import LIQUIDIO_CN2350

LOADS = (0.5, 0.7, 0.9)


def main() -> None:
    for dispersion in ("low", "high"):
        rows = [("load",) + tuple(f"{p} p99 (µs)" for p in POLICIES)]
        for load in LOADS:
            cells = [f"{load:.1f}"]
            for policy in POLICIES:
                _mean, p99 = run_point(
                    LIQUIDIO_CN2350, policy, dispersion, load,
                    duration_us=60_000.0)
                cells.append(f"{p99:.1f}")
            rows.append(tuple(cells))
        print(render_table(
            rows, title=f"\n{dispersion}-dispersion service times "
                        f"(10GbE LiquidIOII CN2350)"))
    print("\nExpected shape: under low dispersion the hybrid tracks FCFS; "
          "under high dispersion it beats both standalone disciplines.")


if __name__ == "__main__":
    main()
