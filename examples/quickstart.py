#!/usr/bin/env python
"""Quickstart: offload an actor onto a simulated SmartNIC with iPipe.

Builds one server (a 12-core LiquidIOII CN2350 behind a 10GbE ToR), sets
up a key-value cache actor on the NIC, drives it with closed-loop
clients, and prints latency/throughput plus where the work ran.

Run:  python examples/quickstart.py
"""

from repro.apps.microbench import KvCache
from repro.core import Actor, SchedulerConfig
from repro.experiments.testbed import make_testbed
from repro.nic import LIQUIDIO_CN2350, WorkloadProfile
from repro.sim import Rng


def make_cache_handler(cache: KvCache):
    """The actor's exec_handler: real cache ops + Table-3 timing."""

    def handler(actor, msg, ctx):
        # charge the measured KV-cache cost for this device (Table 3)
        yield ctx.compute()
        op = msg.payload["op"]
        key = msg.payload["key"].encode()
        if op == "set":
            cache.write(key, msg.payload["value"].encode())
            ctx.reply(msg, payload={"status": "stored"}, size=64)
        else:
            value = cache.read(key)
            ctx.reply(msg, payload={"value": value}, size=msg.size)

    return handler


def main() -> None:
    bed = make_testbed(bandwidth_gbps=10)
    server = bed.add_server("server", LIQUIDIO_CN2350,
                            config=SchedulerConfig())
    cache = KvCache(capacity_bytes=1 << 20)
    actor = Actor("kv-cache", make_cache_handler(cache),
                  profile=WorkloadProfile("kv_cache", 3.7, 1.2, 0.9),
                  concurrent=True)
    server.runtime.register_actor(actor, steering_keys=["data"])

    rng = Rng(7)

    def payload(i: int):
        if rng.random() < 0.1:
            return {"op": "set", "key": f"k{i % 500}", "value": "v" * 64}
        return {"op": "get", "key": f"k{rng.randint(0, 499)}"}

    client = bed.add_client("client")
    gen = client.closed_loop(dst="server", clients=16, size=256,
                             payload_factory=payload)
    bed.sim.run(until=50_000.0)  # 50 ms of virtual time
    gen.stop()
    server.runtime.stop()

    elapsed_ms = bed.sim.now / 1000.0
    print(f"simulated {elapsed_ms:.0f} ms of a 10GbE rack")
    print(f"completed: {gen.completed} requests "
          f"({gen.completed / bed.sim.now:.2f} Mop/s)")
    print(f"latency:   mean {gen.latency.mean:.1f} µs, "
          f"p99 {gen.latency.p99:.1f} µs")
    print(f"cache:     {len(cache)} keys, hit ratio {cache.hit_ratio:.2f}")
    print(f"placement: actor on {actor.location.value}, "
          f"NIC cores busy {server.runtime.nic_cores_used(bed.sim.now):.2f}, "
          f"host cores busy {server.runtime.host_cores_used(bed.sim.now):.2f}")


if __name__ == "__main__":
    main()
