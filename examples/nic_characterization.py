#!/usr/bin/env python
"""Reproduce the paper's §2 SmartNIC characterization study.

Prints Table 1 (specs), Figure 2/3 core counts, Figure 4 headroom,
Figure 6 messaging, Figures 7-10 DMA/RDMA curves, and Table 2 memory
latencies from the calibrated hardware models.

Run:  python examples/nic_characterization.py
"""

from repro.experiments.characterization import (
    computing_headroom_us,
    cores_to_saturate,
    figure6_series,
    figure7_series,
    figure10_series,
    table2_rows,
    table3_rows,
)
from repro.experiments.report import render_series, render_table
from repro.nic import LIQUIDIO_CN2350, STINGRAY_PS225, table1_rows


def main() -> None:
    print(render_table(table1_rows(), title="Table 1: SmartNIC catalog"))

    print("\nFigures 2/3: NIC cores needed for line rate (0 = unreachable)")
    for spec in (LIQUIDIO_CN2350, STINGRAY_PS225):
        cores = {size: cores_to_saturate(spec, size)
                 for size in (64, 128, 256, 512, 1024, 1500)}
        print(f"  {spec.model}: {cores}")

    print("\nFigure 4: computing headroom at line rate (µs/packet)")
    for spec in (LIQUIDIO_CN2350, STINGRAY_PS225):
        print(f"  {spec.model}: 256B={computing_headroom_us(spec, 256):.2f}  "
              f"1024B={computing_headroom_us(spec, 1024):.2f}")

    print("\nFigure 6: messaging latency (µs)")
    for name, points in figure6_series().items():
        print(" ", render_series(name, *zip(*points)))

    print("\nFigure 7: DMA latency (µs)")
    for name, points in figure7_series().items():
        print(" ", render_series(name, *zip(*points)))

    print("\nFigure 10: RDMA throughput (Mops)")
    for name, points in figure10_series().items():
        print(" ", render_series(name, *zip(*points)))

    print()
    print(render_table(table2_rows(), title="Table 2: memory latency (ns)"))
    print()
    print(render_table(table3_rows(),
                       title="Table 3: offloaded workloads (+ host speedup)"))


if __name__ == "__main__":
    main()
