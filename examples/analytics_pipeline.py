#!/usr/bin/env python
"""Real-time analytics pipeline (§4's RTA app) with adaptive offload.

Three worker servers run the filter → counter → ranker pipeline on their
SmartNICs; per-worker rankings aggregate on worker0.  The script pushes
a synthetic Twitter stream, then overloads the system with small packets
to show iPipe migrating actors to the host and pulling them back.

Run:  python examples/analytics_pipeline.py
"""

from repro.apps.rta import RtaWorkerNode
from repro.core import SchedulerConfig
from repro.core.actor import Location
from repro.experiments.testbed import make_testbed
from repro.net import OpenLoopGenerator
from repro.nic import LIQUIDIO_CN2350
from repro.sim import Rng
from repro.workloads import TwitterWorkload

WORKERS = ("worker0", "worker1", "worker2")


def placement(workers) -> str:
    return " ".join(
        f"{name}:{actor.location.value[0]}"
        for name, node in workers.items()
        for actor in (node.filter_actor, node.counter_actor))


def main() -> None:
    bed = make_testbed(bandwidth_gbps=10)
    workers = {}
    for name in WORKERS:
        server = bed.add_server(name, LIQUIDIO_CN2350, config=SchedulerConfig())
        workers[name] = RtaWorkerNode(server.runtime, aggregate_node="worker0")

    workload = TwitterWorkload(packet_size=512, seed=17)
    gen = OpenLoopGenerator(
        bed.sim, send=bed.network.send, src="feed", dst="worker0",
        rate_mpps=1.0, size=512,
        payload_factory=lambda i: workload.next_request(i)["tuples"] and
        {"tuples": workload.next_request(i)["tuples"]},
        rng=Rng(3))
    bed.network.attach("feed", lambda p: None)
    runtime = bed.server("worker0").runtime
    original = runtime.on_packet

    def routed(packet, original=original):
        packet.kind = "rta-tuple"
        original(packet)

    bed.server("worker0").nic.packet_handler = routed

    print("phase 1: moderate 512B stream at 1.0 Mpps")
    bed.sim.run(until=20_000.0)
    w0 = workers["worker0"]
    print(f"  tuples in: {w0.tuples_in}, passed filter: {w0.filter.passed}, "
          f"discarded: {w0.filter.discarded}")
    print(f"  actor placement: {placement(workers)}")
    print(f"  top-3 ranking: {w0.top[:3]}")

    print("phase 2: overload burst (4.5 Mpps of small packets)")
    gen.rate_per_us = 4.5
    bed.sim.run(until=45_000.0)
    sched = runtime.nic_scheduler
    print(f"  scheduler: {sched.pushes} push / {sched.pulls} pull migrations, "
          f"{sched.downgrades} downgrades, {sched.upgrades} upgrades")
    print(f"  actor placement: {placement(workers)}")
    print(f"  host cores busy: {runtime.host_cores_used(bed.sim.now):.2f}")

    print("phase 3: load drops back to 0.3 Mpps")
    gen.rate_per_us = 0.3
    bed.sim.run(until=90_000.0)
    print(f"  scheduler: {sched.pushes} push / {sched.pulls} pull migrations")
    print(f"  actor placement: {placement(workers)}")
    on_nic = sum(1 for node in workers.values()
                 for a in (node.filter_actor, node.counter_actor)
                 if a.location is Location.NIC)
    print(f"  {on_nic}/6 pipeline actors back on the NICs")
    gen.stop()
    for name in WORKERS:
        bed.server(name).runtime.stop()


if __name__ == "__main__":
    main()
