#!/usr/bin/env python
"""Distributed transactions (§4's DT app): OCC + two-phase commit.

One coordinator server and two participant servers run the transaction
actors on their SmartNICs; the coordinator's log checkpoints to the
host-pinned logging actor. The script commits a banking-style workload,
provokes conflicts, and prints the protocol statistics.

Run:  python examples/transactions_demo.py
"""

from repro.apps.dt import DtCoordinatorNode, DtParticipantNode
from repro.core import SchedulerConfig, snapshot
from repro.experiments.testbed import make_testbed
from repro.net import Packet
from repro.nic import LIQUIDIO_CN2350
from repro.sim import Rng


def main() -> None:
    bed = make_testbed(bandwidth_gbps=10)
    coord_srv = bed.add_server("coord", LIQUIDIO_CN2350,
                               config=SchedulerConfig())
    participants = {}
    for name in ("part0", "part1"):
        server = bed.add_server(name, LIQUIDIO_CN2350,
                                config=SchedulerConfig())
        participants[name] = DtParticipantNode(server.runtime)
    coord = DtCoordinatorNode(coord_srv.runtime, ["part0", "part1"],
                              log_segment_bytes=4096)

    replies = []
    bed.network.attach("client", lambda p: replies.append(p))
    rng = Rng(23)
    seq = [0]

    def send_txn(reads, writes):
        seq[0] += 1
        pkt = Packet("client", "coord", 256, kind="dt-txn",
                     payload={"reads": reads, "writes": writes},
                     created_at=bed.sim.now)
        pkt.meta["client"] = ("client", seq[0])
        bed.network.send(pkt)

    # open 64 accounts with 100 credits each
    for i in range(64):
        send_txn([], {f"acct{i:02d}": b"100"})
        bed.sim.run(until=bed.sim.now + 120.0)
    bed.sim.run(until=bed.sim.now + 2_000.0)
    print(f"setup: {coord.coordinator.committed} committed, "
          f"{coord.coordinator.aborted} aborted")

    # transfer storm: read two accounts, write one (the paper's 2R+1W mix)
    for _ in range(300):
        a, b = rng.randint(0, 63), rng.randint(0, 63)
        send_txn([f"acct{a:02d}", f"acct{b:02d}"],
                 {f"acct{rng.randint(0, 63):02d}": b"42"})
        bed.sim.run(until=bed.sim.now + 40.0)
    bed.sim.run(until=bed.sim.now + 3_000.0)

    statuses = [r.payload["status"] for r in replies]
    print(f"transfers: {statuses.count('committed')} committed, "
          f"{statuses.count('aborted')} aborted "
          f"({coord.coordinator.aborted} total aborts incl. lock conflicts)")
    print(f"coordinator log: {coord.log.records_total} records, "
          f"{coord.log.checkpointed_segments} segments checkpointed to the "
          f"host logging actor")
    for name, node in participants.items():
        print(f"{name}: {len(node.participant.store)} keys, "
              f"{node.participant.store.buckets} hash buckets, "
              f"{node.participant.lock_conflicts} lock conflicts")
    snap = snapshot(coord_srv.runtime)
    print(f"coordinator placement: {snap.placement()}")
    print(f"coordinator host cores {snap.host_cores_used:.2f}, "
          f"NIC cores {snap.nic_cores_used:.2f}")


if __name__ == "__main__":
    main()
