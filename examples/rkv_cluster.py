#!/usr/bin/env python
"""Replicated key-value store on three SmartNIC servers (§4's RKV app).

A leader and two followers run Multi-Paxos consensus and LSM-tree actors
on their NICs; SSTable reads and compaction stay pinned to the hosts.
The script loads data, drives the 95/5 zipf workload, and reports where
requests were served and what consensus cost.

Run:  python examples/rkv_cluster.py
"""

from repro.apps.rkv import RkvNode
from repro.core import SchedulerConfig
from repro.experiments.testbed import make_testbed
from repro.net import ClosedLoopGenerator
from repro.nic import LIQUIDIO_CN2350
from repro.sim import Rng
from repro.workloads import KvWorkload

NODES = ("leader", "follower1", "follower2")


def main() -> None:
    bed = make_testbed(bandwidth_gbps=10)
    nodes = {}
    for name in NODES:
        server = bed.add_server(name, LIQUIDIO_CN2350,
                                config=SchedulerConfig())
        peers = [n for n in NODES if n != name]
        nodes[name] = RkvNode(server.runtime, peers, initial_leader="leader")

    workload = KvWorkload(packet_size=512, seed=11)
    for node in nodes.values():
        node.prefill(4000, workload.value_bytes)

    gen = ClosedLoopGenerator(
        bed.sim, send=bed.network.send, src="client", dst="leader",
        clients=32, size=512,
        payload_factory=lambda i: workload.next_request(i), rng=Rng(5))
    bed.network.attach("client", gen.on_reply)

    # route each request by the kind its payload carries
    for name in NODES:
        runtime = bed.server(name).runtime
        original = runtime.on_packet

        def routed(packet, original=original):
            if isinstance(packet.payload, dict) and "kind" in packet.payload \
                    and "payload" not in packet.payload:
                packet.kind = packet.payload["kind"]
            original(packet)

        bed.server(name).nic.packet_handler = routed

    bed.sim.run(until=40_000.0)
    gen.stop()
    for name in NODES:
        bed.server(name).runtime.stop()

    leader = nodes["leader"]
    print(f"completed {gen.completed} ops in {bed.sim.now / 1000:.0f} ms "
          f"({gen.completed / bed.sim.now:.2f} Mop/s)")
    print(f"latency: mean {gen.latency.mean:.1f} µs, p99 {gen.latency.p99:.1f} µs")
    print(f"workload: {workload.reads} reads / {workload.writes} writes issued")
    print(f"reads served by NIC memtable: {leader.reads_served_memtable}, "
          f"by host SSTables: {leader.reads_served_sstable}, "
          f"not found: {leader.not_found}")
    print(f"paxos: {leader.paxos.committed_count} instances committed on the "
          f"leader, {nodes['follower1'].paxos.committed_count} on follower1")
    print(f"LSM: {leader.storage.lsm.stats.flushes} memtable flushes, "
          f"{leader.storage.lsm.stats.major_compactions} major compactions")
    for name in NODES:
        runtime = bed.server(name).runtime
        print(f"{name:10s} NIC cores {runtime.nic_cores_used(bed.sim.now):5.2f}  "
              f"host cores {runtime.host_cores_used(bed.sim.now):5.2f}")


if __name__ == "__main__":
    main()
